package telemetry

import (
	"fmt"
	"net/http"
	"net/http/pprof"
)

// Handler serves the live observability endpoints:
//
//	GET /metrics       plain-text snapshot of every instrument
//	GET /debug/trace   Chrome trace-event JSON of every span so far
//	GET /debug/pprof/  net/http/pprof profiles (CPU, heap, goroutine, ...)
//	GET /              a short index
//
// cmd/sgxhost mounts it behind the -telemetry-addr flag. Either argument
// may be nil; the endpoints then serve the empty disabled forms, so a
// scraper never sees a 500 just because a subsystem is dark. pprof is
// mounted explicitly on this mux (not the http.DefaultServeMux side
// effect), so profiles come from the same port as /metrics and are only
// exposed when the operator opted into a telemetry listener.
func Handler(tr *Tracer, m *Metrics) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_ = m.WriteText(w)
	})
	mux.HandleFunc("/debug/trace", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("Content-Disposition", `attachment; filename="trace.json"`)
		_ = tr.WriteChromeTrace(w)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintf(w, "sgxmig telemetry\n\n/metrics      instrument snapshot\n/debug/trace  Chrome trace JSON (%d spans done, %d running)\n/debug/pprof/ runtime profiles\n",
			len(tr.Completed()), tr.ActiveCount())
	})
	return mux
}

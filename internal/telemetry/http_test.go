package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

// TestHandlerConcurrent hammers the observability mux from concurrent
// readers while writers churn every sink — counters, histogram, spans,
// journal — under the race detector. Each exposition body must be
// internally consistent (no torn lines, valid JSON), and the bounded
// rings must hold the buffers flat no matter how many events the writers
// push.
func TestHandlerConcurrent(t *testing.T) {
	const (
		journalCap = 64
		writers    = 4
		readers    = 4
		rounds     = 200
	)
	tr := NewSeeded(11)
	tr.SetSpanCap(journalCap)
	m := NewMetrics()
	j := NewJournal(journalCap)
	h := Handler(tr, m, j)

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				m.Counter("host.ops.call").Inc()
				m.Histogram("vmm.pagecopy.ns", []int64{100, 1000}).Observe(int64(i))
				sp := tr.Begin("req", Int("writer", w))
				j.Append(EventPrecopyRound, fmt.Sprintf("vm-%d", w), sp.Context(), Int("round", i))
				sp.End()
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				var rec *httptest.ResponseRecorder
				switch i % 3 {
				case 0:
					rec = httptest.NewRecorder()
					h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
				case 1:
					rec = httptest.NewRecorder()
					h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics/prom", nil))
					sc := bufio.NewScanner(strings.NewReader(rec.Body.String()))
					for sc.Scan() {
						line := sc.Text()
						if strings.HasPrefix(line, "#") {
							continue
						}
						if len(strings.Fields(line)) != 2 {
							t.Errorf("torn exposition line %q", line)
						}
					}
				default:
					rec = httptest.NewRecorder()
					h.ServeHTTP(rec, httptest.NewRequest("GET", fmt.Sprintf("/events?since=%d", i), nil))
					var out struct {
						Next   uint64            `json:"next"`
						Events []json.RawMessage `json:"events"`
					}
					if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
						t.Errorf("reader %d: /events not JSON: %v", r, err)
					}
				}
				if rec.Code != 200 {
					t.Errorf("reader %d round %d: code %d", r, i, rec.Code)
				}
			}
		}(r)
	}
	wg.Wait()

	// Flat memory: the rings must have evicted, not grown. writers*rounds
	// events went in; only journalCap may remain.
	if got := j.Len(); got != journalCap {
		t.Errorf("journal retains %d records, want the cap %d", got, journalCap)
	}
	if got := len(tr.Completed()); got > journalCap {
		t.Errorf("tracer retains %d spans, cap is %d", got, journalCap)
	}
	if got := m.Counter("host.ops.call").Value(); got != writers*rounds {
		t.Errorf("counter = %d, want %d (lost increments)", got, writers*rounds)
	}
	recs, cur := j.Since(0)
	if cur != writers*rounds {
		t.Errorf("final cursor = %d, want %d", cur, writers*rounds)
	}
	for i := 1; i < len(recs); i++ {
		if recs[i].Seq != recs[i-1].Seq+1 {
			t.Errorf("journal gap: %d then %d", recs[i-1].Seq, recs[i].Seq)
		}
	}
}

package telemetry

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// EventKind types one structured journal record. The kinds mirror the
// protocol's security-relevant points (paper Sec. V): the quiesce barrier,
// the attested migration channel coming up, the single key-release commit
// with its surrounding self-destroy, the target-side key receipt and
// restore, plus the performance-relevant VMM round boundaries and EPC
// pressure bursts. It crosses the wire inside hostproto's OpEvents
// response, so it is wireproto-lint covered: every kind must be produced
// by an emitter and consumed exhaustively.
type EventKind uint8

const (
	// EventQuiesce: the source enclave reached the quiescent barrier —
	// every worker parked in its AEX trampoline (end of core.Prepare).
	EventQuiesce EventKind = iota + 1
	// EventChannelUp: the attested migration channel finished its
	// LocalAttest handshake and the session key is installed.
	EventChannelUp
	// EventKeyRelease: the commit point. The source sent MsgKey — the one
	// moment the sealed state key leaves the (already destroyed) source.
	// Exactly one such record exists per completed migration.
	EventKeyRelease
	// EventKeyReceive: the target received MsgKey and installed the key.
	EventKeyReceive
	// EventSelfDestroy: the source instance was destroyed (MarkDead),
	// strictly before EventKeyRelease per the single-instance rule.
	EventSelfDestroy
	// EventRestoreFinish: the target finished restoring and verifying the
	// enclave; the instance is live on the new host.
	EventRestoreFinish
	// EventAbort: a migration phase failed; attrs carry phase and cause.
	EventAbort
	// EventPrecopyRound: one VMM pre-copy round finished (attrs: round,
	// pages).
	EventPrecopyRound
	// EventStopCopy: the VMM stop-and-copy pass finished (attrs: pages).
	EventStopCopy
	// EventDowntime: the VM's downtime window closed (attrs: downtime).
	EventDowntime
	// EventEPCPressure: a burst of EPC evictions (attrs: evictions, free).
	EventEPCPressure
)

// String names the kind for exposition (JSON /events, audit lines). The
// switch is defaultless on purpose: the wireproto lint checks it stays
// exhaustive when kinds are added.
func (k EventKind) String() string {
	switch k {
	case EventQuiesce:
		return "quiesce"
	case EventChannelUp:
		return "channel-up"
	case EventKeyRelease:
		return "key-release"
	case EventKeyReceive:
		return "key-receive"
	case EventSelfDestroy:
		return "self-destroy"
	case EventRestoreFinish:
		return "restore-finish"
	case EventAbort:
		return "abort"
	case EventPrecopyRound:
		return "precopy-round"
	case EventStopCopy:
		return "stop-copy"
	case EventDowntime:
		return "downtime"
	case EventEPCPressure:
		return "epc-pressure"
	}
	return "unknown"
}

// Record is one journal entry. It carries the distributed trace context of
// the operation that emitted it, so a journal line joins the Chrome trace
// of its migration, and it rides the wire verbatim in the OpEvents
// response (gob; round-trip pinned in tests).
type Record struct {
	// Seq is the journal-local sequence number, monotonically increasing
	// from 1. It is the OpEvents cursor: a scraper that saw Seq n asks for
	// everything after n. Re-stamped on fleet-side Merge.
	Seq uint64
	// WallNs is the emitting host's wall clock (UnixNano) at append time.
	// Preserved across Merge so the fleet stream keeps source timestamps.
	WallNs int64
	// TraceID/SpanID join the record to its distributed trace. Zero for
	// events outside any traced operation (e.g. EPC pressure bursts).
	TraceID TraceID
	SpanID  SpanID
	Kind    EventKind
	// EnclaveID names the enclave (the host's session id, e.g.
	// "counter-1") or is empty for host-level events.
	EnclaveID string
	// Host is empty in a host-local journal; the fleet's Merge stamps the
	// origin host's address so the aggregate stream stays attributable.
	Host string
	// Attrs carry kind-specific details (round, pages, cause, ...).
	Attrs []Attr
}

// DefaultJournalCap bounds a new journal's ring. At well under ~200 bytes
// a record this caps resident cost near a megabyte while still holding
// hours of protocol events on a busy host.
const DefaultJournalCap = 8192

// Journal is a bounded ring of structured protocol events. Append is
// lock-cheap and allocation-free (one mutexed store into a preallocated
// ring), so emitters on migration hot paths and abort paths can call it
// unconditionally. A nil *Journal is a no-op on every method, mirroring
// the package's nil-tracer contract.
type Journal struct {
	mu   sync.Mutex
	ring []Record // guarded by mu; len == cap, preallocated
	next uint64   // guarded by mu; Seq of the most recent record
}

// NewJournal returns a journal holding the last n records (n <= 0 selects
// DefaultJournalCap).
func NewJournal(n int) *Journal {
	if n <= 0 {
		n = DefaultJournalCap
	}
	return &Journal{ring: make([]Record, n)}
}

// Append files one event. The attrs slice is retained, not copied: pass a
// fresh literal (the idiom everywhere in this package) or nothing at all.
// Safe on a nil journal; never allocates beyond the caller's attrs.
func (j *Journal) Append(kind EventKind, enclaveID string, ctx Context, attrs ...Attr) {
	if j == nil {
		return
	}
	now := time.Now().UnixNano()
	j.mu.Lock()
	j.next++
	j.ring[(j.next-1)%uint64(len(j.ring))] = Record{
		Seq:       j.next,
		WallNs:    now,
		TraceID:   ctx.TraceID,
		SpanID:    ctx.SpanID,
		Kind:      kind,
		EnclaveID: enclaveID,
		Attrs:     attrs,
	}
	j.mu.Unlock()
}

// Merge files records scraped from another host's journal, stamping their
// origin and re-stamping Seq into this journal's stream (WallNs, trace
// ids, and everything else pass through). The fleet federator uses it to
// build the cluster-wide event stream.
func (j *Journal) Merge(host string, recs []Record) {
	if j == nil || len(recs) == 0 {
		return
	}
	j.mu.Lock()
	for _, r := range recs {
		j.next++
		r.Seq = j.next
		r.Host = host
		j.ring[(j.next-1)%uint64(len(j.ring))] = r
	}
	j.mu.Unlock()
}

// Since returns copies of every retained record with Seq > cursor, oldest
// first, plus the cursor to pass next time (the newest Seq seen, or the
// input cursor when nothing is new). Records that fell off the ring are
// silently skipped — the cursor contract is "at most everything since",
// bounded by the ring. Since(0) returns the whole retained journal.
func (j *Journal) Since(cursor uint64) ([]Record, uint64) {
	if j == nil {
		return nil, cursor
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.next <= cursor {
		return nil, cursor
	}
	oldest := uint64(1)
	if n := uint64(len(j.ring)); j.next > n {
		oldest = j.next - n + 1
	}
	if cursor+1 > oldest {
		oldest = cursor + 1
	}
	out := make([]Record, 0, j.next-oldest+1)
	for seq := oldest; seq <= j.next; seq++ {
		out = append(out, j.ring[(seq-1)%uint64(len(j.ring))])
	}
	return out, j.next
}

// Len returns how many records the journal currently retains.
func (j *Journal) Len() int {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if n := uint64(len(j.ring)); j.next > n {
		return int(n)
	}
	return int(j.next)
}

// eventJSON is the /events wire form of a Record: trace ids as hex
// strings, the kind by name, attrs flattened. Shared by the host's
// /events endpoint and the fleet aggregate so scrapers parse one schema.
type eventJSON struct {
	Seq     uint64            `json:"seq"`
	WallNs  int64             `json:"wall_ns"`
	Trace   string            `json:"trace,omitempty"`
	Span    string            `json:"span,omitempty"`
	Kind    string            `json:"kind"`
	Enclave string            `json:"enclave,omitempty"`
	Host    string            `json:"host,omitempty"`
	Attrs   map[string]string `json:"attrs,omitempty"`
}

// recordJSON converts one Record for exposition.
func recordJSON(r Record) eventJSON {
	e := eventJSON{
		Seq:     r.Seq,
		WallNs:  r.WallNs,
		Kind:    r.Kind.String(),
		Enclave: r.EnclaveID,
		Host:    r.Host,
	}
	if !r.TraceID.IsZero() {
		e.Trace = r.TraceID.String()
	}
	if !r.SpanID.IsZero() {
		e.Span = r.SpanID.String()
	}
	if len(r.Attrs) > 0 {
		e.Attrs = make(map[string]string, len(r.Attrs))
		for _, a := range r.Attrs {
			e.Attrs[a.Key] = a.Val
		}
	}
	return e
}

// WriteEventsJSON writes the records after cursor as one JSON object,
// {"next": <cursor>, "events": [...]}: the /events?since=N payload. A nil
// journal writes the empty stream, so a dark endpoint still parses.
func (j *Journal) WriteEventsJSON(w io.Writer, cursor uint64) error {
	recs, next := j.Since(cursor)
	events := make([]eventJSON, len(recs))
	for i, r := range recs {
		events[i] = recordJSON(r)
	}
	return json.NewEncoder(w).Encode(struct {
		Next   uint64      `json:"next"`
		Events []eventJSON `json:"events"`
	}{Next: next, Events: events})
}

package telemetry

import (
	"bytes"
	"encoding/gob"
	"encoding/json"
	"fmt"
	"reflect"
	"testing"
)

// recordFixture populates every Record field so the OpEvents wire payload
// is exercised with non-zero values throughout.
func recordFixture() Record {
	return Record{
		Seq:       7,
		WallNs:    1_700_000_000_000_000_123,
		TraceID:   TraceID{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16},
		SpanID:    SpanID{8, 7, 6, 5, 4, 3, 2, 1},
		Kind:      EventKeyRelease,
		EnclaveID: "counter-1",
		Host:      "127.0.0.1:7001",
		Attrs:     []Attr{{Key: "sealed_bytes", Val: "48"}},
	}
}

// TestRecordRoundTrip pins the gob wire format of Record — the OpEvents
// payload the fleet federator scrapes — including the empty form and a
// truncated-frame rejection.
func TestRecordRoundTrip(t *testing.T) {
	recs := []Record{
		{}, // zero record
		recordFixture(),
	}
	for i, in := range recs {
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(in); err != nil {
			t.Fatalf("encode #%d: %v", i, err)
		}
		full := append([]byte(nil), buf.Bytes()...)
		var out Record
		if err := gob.NewDecoder(&buf).Decode(&out); err != nil {
			t.Fatalf("decode #%d: %v", i, err)
		}
		if !reflect.DeepEqual(out, in) {
			t.Errorf("round trip changed record: %+v != %+v", out, in)
		}
		var trunc Record
		if err := gob.NewDecoder(bytes.NewReader(full[:len(full)/2])).Decode(&trunc); err == nil {
			t.Errorf("truncated frame #%d decoded to %+v, want error", i, trunc)
		}
	}
}

// TestEventKindStrings pins every kind's exposition name and the unknown
// fallback; the names are the /events "kind" field and part of the audit
// line format, so renames are breaking changes.
func TestEventKindStrings(t *testing.T) {
	want := map[EventKind]string{
		EventQuiesce:       "quiesce",
		EventChannelUp:     "channel-up",
		EventKeyRelease:    "key-release",
		EventKeyReceive:    "key-receive",
		EventSelfDestroy:   "self-destroy",
		EventRestoreFinish: "restore-finish",
		EventAbort:         "abort",
		EventPrecopyRound:  "precopy-round",
		EventStopCopy:      "stop-copy",
		EventDowntime:      "downtime",
		EventEPCPressure:   "epc-pressure",
	}
	for k, s := range want {
		if got := k.String(); got != s {
			t.Errorf("kind %d String() = %q, want %q", k, got, s)
		}
	}
	if got := EventKind(0).String(); got != "unknown" {
		t.Errorf("EventKind(0).String() = %q, want unknown", got)
	}
}

// TestJournalCursor exercises Seq assignment and the Since cursor
// contract: incremental fetches see each record exactly once, an
// up-to-date cursor returns nothing, and Since(0) is the full journal.
func TestJournalCursor(t *testing.T) {
	j := NewJournal(16)
	if recs, next := j.Since(0); len(recs) != 0 || next != 0 {
		t.Fatalf("empty journal Since(0) = %d recs, cursor %d", len(recs), next)
	}
	for i := 0; i < 5; i++ {
		j.Append(EventQuiesce, fmt.Sprintf("enc-%d", i), Context{})
	}
	recs, cur := j.Since(0)
	if len(recs) != 5 || cur != 5 {
		t.Fatalf("Since(0) = %d recs, cursor %d, want 5, 5", len(recs), cur)
	}
	for i, r := range recs {
		if r.Seq != uint64(i+1) {
			t.Errorf("record %d Seq = %d, want %d", i, r.Seq, i+1)
		}
	}
	j.Append(EventChannelUp, "enc-5", Context{})
	recs, cur = j.Since(cur)
	if len(recs) != 1 || recs[0].Kind != EventChannelUp || cur != 6 {
		t.Fatalf("incremental Since = %+v cursor %d, want one channel-up, 6", recs, cur)
	}
	if recs, cur2 := j.Since(cur); len(recs) != 0 || cur2 != cur {
		t.Fatalf("up-to-date Since = %d recs, cursor %d, want 0, %d", len(recs), cur2, cur)
	}
	if j.Len() != 6 {
		t.Fatalf("Len = %d, want 6", j.Len())
	}
}

// TestJournalRingEviction fills past the cap and checks the ring keeps
// exactly the newest cap records, Seq numbering stays global (not
// ring-relative), and a stale cursor skips the fallen-off gap.
func TestJournalRingEviction(t *testing.T) {
	j := NewJournal(4)
	for i := 0; i < 10; i++ {
		j.Append(EventPrecopyRound, "vm", Context{})
	}
	if j.Len() != 4 {
		t.Fatalf("Len = %d, want 4", j.Len())
	}
	recs, cur := j.Since(0)
	if len(recs) != 4 || cur != 10 {
		t.Fatalf("Since(0) = %d recs, cursor %d, want 4, 10", len(recs), cur)
	}
	for i, r := range recs {
		if r.Seq != uint64(7+i) {
			t.Errorf("record %d Seq = %d, want %d", i, r.Seq, 7+i)
		}
	}
	// A cursor pointing into the evicted region resumes at the oldest
	// retained record rather than erroring or duplicating.
	recs, _ = j.Since(2)
	if len(recs) != 4 || recs[0].Seq != 7 {
		t.Fatalf("stale-cursor Since(2) = %d recs starting at %d, want 4 from 7", len(recs), recs[0].Seq)
	}
}

// TestJournalMerge checks the federation path: merged records keep their
// origin timestamps, traces, and payloads but get the aggregate's own Seq
// stream and the origin host stamp.
func TestJournalMerge(t *testing.T) {
	agg := NewJournal(16)
	agg.Append(EventQuiesce, "local", Context{})
	src := recordFixture()
	src.Host = ""
	agg.Merge("h1:7001", []Record{src})
	recs, _ := agg.Since(0)
	if len(recs) != 2 {
		t.Fatalf("merged journal has %d records, want 2", len(recs))
	}
	m := recs[1]
	if m.Seq != 2 || m.Host != "h1:7001" {
		t.Fatalf("merged record Seq=%d Host=%q, want 2, h1:7001", m.Seq, m.Host)
	}
	if m.WallNs != src.WallNs || m.TraceID != src.TraceID || m.Kind != src.Kind || m.EnclaveID != src.EnclaveID {
		t.Fatalf("merge mutated payload: %+v", m)
	}
}

// TestJournalNil pins the nil no-op contract that lets emitters call the
// journal unconditionally on abort paths.
func TestJournalNil(t *testing.T) {
	var j *Journal
	j.Append(EventAbort, "x", Context{}, String("cause", "nil"))
	j.Merge("h", []Record{{}})
	if recs, cur := j.Since(3); recs != nil || cur != 3 {
		t.Fatalf("nil Since = %v, %d", recs, cur)
	}
	if j.Len() != 0 {
		t.Fatalf("nil Len = %d", j.Len())
	}
	var buf bytes.Buffer
	if err := j.WriteEventsJSON(&buf, 0); err != nil {
		t.Fatalf("nil WriteEventsJSON: %v", err)
	}
	var out struct {
		Next   uint64            `json:"next"`
		Events []json.RawMessage `json:"events"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("nil /events payload does not parse: %v", err)
	}
}

// TestWriteEventsJSON checks the /events exposition: hex trace ids, named
// kinds, flattened attrs, and the since-cursor filter.
func TestWriteEventsJSON(t *testing.T) {
	j := NewJournal(8)
	ctx := Context{
		TraceID: TraceID{0xaa, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 0xbb},
		SpanID:  SpanID{1, 2, 3, 4, 5, 6, 7, 8},
	}
	j.Append(EventQuiesce, "counter-1", Context{})
	j.Append(EventKeyRelease, "counter-1", ctx, Int("sealed_bytes", 48))
	var buf bytes.Buffer
	if err := j.WriteEventsJSON(&buf, 1); err != nil {
		t.Fatal(err)
	}
	var out struct {
		Next   uint64 `json:"next"`
		Events []struct {
			Seq     uint64            `json:"seq"`
			Trace   string            `json:"trace"`
			Span    string            `json:"span"`
			Kind    string            `json:"kind"`
			Enclave string            `json:"enclave"`
			Attrs   map[string]string `json:"attrs"`
		} `json:"events"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("payload does not parse: %v\n%s", err, buf.Bytes())
	}
	if out.Next != 2 || len(out.Events) != 1 {
		t.Fatalf("since=1 payload: next=%d events=%d, want 2, 1", out.Next, len(out.Events))
	}
	e := out.Events[0]
	if e.Kind != "key-release" || e.Enclave != "counter-1" || e.Seq != 2 {
		t.Fatalf("event = %+v", e)
	}
	if e.Trace != ctx.TraceID.String() || e.Span != ctx.SpanID.String() {
		t.Fatalf("trace ids not hex-joined: trace=%q span=%q", e.Trace, e.Span)
	}
	if e.Attrs["sealed_bytes"] != "48" {
		t.Fatalf("attrs = %v", e.Attrs)
	}
}

// TestJournalAppendAllocs pins the hot-path contract: an attr-free append
// into a warm ring performs zero allocations.
func TestJournalAppendAllocs(t *testing.T) {
	j := NewJournal(64)
	ctx := Context{TraceID: TraceID{1}, SpanID: SpanID{2}}
	if n := testing.AllocsPerRun(1000, func() {
		j.Append(EventPrecopyRound, "vm0", ctx)
	}); n != 0 {
		t.Fatalf("Append allocates %.1f objects/op, want 0", n)
	}
}

// BenchmarkJournalAppend measures the hot-path append (the acceptance
// budget is <=200ns/op with zero allocations).
func BenchmarkJournalAppend(b *testing.B) {
	j := NewJournal(DefaultJournalCap)
	ctx := Context{TraceID: TraceID{1}, SpanID: SpanID{2}}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		j.Append(EventPrecopyRound, "vm0", ctx)
	}
}

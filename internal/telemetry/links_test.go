package telemetry

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestSpanLinks(t *testing.T) {
	tr := NewSeeded(7)
	producer := tr.Begin("producer")
	producer.End()

	consumer := tr.Begin("consumer")
	consumer.Link(producer.Context())
	consumer.Link(Context{}) // zero context: ignored
	consumer.End()

	var nilSpan *Span
	nilSpan.Link(producer.Context()) // must not panic

	recs := tr.ByName("consumer")
	if len(recs) != 1 {
		t.Fatalf("want 1 consumer record, got %d", len(recs))
	}
	links := recs[0].Links
	if len(links) != 1 {
		t.Fatalf("want 1 link (zero context dropped), got %d", len(links))
	}
	if links[0].SpanID != producer.Context().SpanID {
		t.Errorf("link points at %s, want %s", links[0].SpanID, producer.Context().SpanID)
	}
	if got := tr.ByName("producer")[0].Links; len(got) != 0 {
		t.Errorf("producer should have no links, got %v", got)
	}
}

// TestChromeTraceFlowEvents checks that a link renders as a matched
// flow-start/flow-finish pair tying the producer's slice to the
// consumer's.
func TestChromeTraceFlowEvents(t *testing.T) {
	tr := NewSeeded(11)
	producer := tr.Begin("producer")
	producer.End()
	consumer := tr.Begin("consumer")
	consumer.Link(producer.Context())
	consumer.End()

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var trace struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
			ID   string `json:"id"`
			BP   string `json:"bp"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &trace); err != nil {
		t.Fatal(err)
	}
	var start, finish int
	var startID, finishID string
	for _, ev := range trace.TraceEvents {
		switch ev.Ph {
		case "s":
			start++
			startID = ev.ID
		case "f":
			finish++
			finishID = ev.ID
			if ev.BP != "e" {
				t.Errorf("flow finish should bind to enclosing slice, bp=%q", ev.BP)
			}
		}
	}
	if start != 1 || finish != 1 {
		t.Fatalf("want exactly one flow pair, got %d starts / %d finishes", start, finish)
	}
	if startID == "" || startID != finishID {
		t.Errorf("flow ids must match: start %q finish %q", startID, finishID)
	}
	wantID := producer.Context().SpanID.String() + "-" + consumer.Context().SpanID.String()
	if startID != wantID {
		t.Errorf("flow id %q, want %q", startID, wantID)
	}
	// The consumer's slice also names the link in its args.
	if !strings.Contains(buf.String(), `"link_0":"`+producer.Context().SpanID.String()+`"`) {
		t.Error("consumer args should carry link_0 with the producer span id")
	}
}

// TestLinksSurviveAdopt checks links ride WireTrace shipment unchanged.
func TestLinksSurviveAdopt(t *testing.T) {
	remote := NewSeeded(21)
	peer := remote.Begin("peer")
	peer.End()
	sp := remote.Begin("shipped")
	sp.Link(peer.Context())
	sp.End()

	local := NewSeeded(22)
	local.Adopt(remote.ExportTrace(sp.Context().TraceID))
	found := false
	for _, r := range local.Completed() {
		if r.Name == "shipped" {
			found = true
			if len(r.Links) != 1 || r.Links[0].SpanID != peer.Context().SpanID {
				t.Errorf("adopted record lost its link: %+v", r.Links)
			}
		}
	}
	if !found {
		t.Fatal("shipped span not adopted")
	}
}

package telemetry

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"testing"
)

// twoHostTrace simulates the client→source→target shipment chain in one
// process: a client roots the trace, the "target" tracer opens spans under
// the propagated context, exports them, and the client adopts the buffer.
func twoHostTrace(t *testing.T) (*Tracer, TraceID) {
	t.Helper()
	client := NewSeeded(100)
	target := NewSeeded(200)

	root := client.Begin("client.migrate")
	ctx, err := Extract(root.Context().Inject())
	if err != nil {
		t.Fatal(err)
	}

	in := target.BeginRemote("host.migratein", ctx)
	restore := in.Child("core.restore")
	restore.End()
	in.End()

	wt := target.ExportTrace(ctx.TraceID)
	wt.Proc = "sgxhost target"
	client.Adopt(wt)
	root.End()
	return client, ctx.TraceID
}

func TestExportAdoptMerge(t *testing.T) {
	client, traceID := twoHostTrace(t)
	recs := client.Completed()
	if len(recs) != 3 {
		t.Fatalf("merged buffer has %d spans, want 3: %+v", len(recs), recs)
	}
	names := map[string]SpanRecord{}
	for _, r := range recs {
		if r.TraceID != traceID {
			t.Errorf("span %q TraceID = %v, want %v", r.Name, r.TraceID, traceID)
		}
		names[r.Name] = r
	}
	for _, want := range []string{"client.migrate", "host.migratein", "core.restore"} {
		if _, ok := names[want]; !ok {
			t.Fatalf("merged trace missing span %q; have %v", want, names)
		}
	}
	// Cross-process parentage survives via SpanID links even though local
	// ID/Parent handles were zeroed on adoption.
	if got, want := names["host.migratein"].ParentSpan, names["client.migrate"].SpanID; got != want {
		t.Errorf("host.migratein ParentSpan = %v, want client span %v", got, want)
	}
	if names["host.migratein"].ID != 0 || names["host.migratein"].Parent != 0 {
		t.Errorf("adopted span kept remote-local handles: %+v", names["host.migratein"])
	}
	if got := names["host.migratein"].Proc; got != "sgxhost target" {
		t.Errorf("adopted span Proc = %q, want %q", got, "sgxhost target")
	}
	if got := names["client.migrate"].Proc; got != "" {
		t.Errorf("local span Proc = %q, want empty", got)
	}
	// Adopted tracks were remapped onto fresh local tracks.
	if names["host.migratein"].Track == names["client.migrate"].Track {
		t.Errorf("adopted span shares a local track")
	}
}

func TestMergedChromeTraceProcesses(t *testing.T) {
	client, traceID := twoHostTrace(t)
	var buf bytes.Buffer
	if err := client.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var trace struct {
		TraceEvents []struct {
			Name string            `json:"name"`
			Ph   string            `json:"ph"`
			PID  uint64            `json:"pid"`
			Args map[string]string `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &trace); err != nil {
		t.Fatalf("invalid trace JSON: %v", err)
	}
	procNames := map[string]uint64{}
	traceIDs := map[string]bool{}
	spansByName := map[string]uint64{}
	for _, ev := range trace.TraceEvents {
		if ev.Ph == "M" && ev.Name == "process_name" {
			procNames[ev.Args["name"]] = ev.PID
		}
		if ev.Ph == "X" || ev.Ph == "B" {
			if id := ev.Args["trace_id"]; id != "" {
				traceIDs[id] = true
			}
			spansByName[ev.Name] = ev.PID
		}
	}
	if len(traceIDs) != 1 || !traceIDs[traceID.String()] {
		t.Fatalf("merged trace has trace_ids %v, want exactly {%s}", traceIDs, traceID)
	}
	localPID, ok := procNames["sgxmig"]
	if !ok {
		t.Fatalf("missing sgxmig process metadata: %v", procNames)
	}
	targetPID, ok := procNames["sgxhost target"]
	if !ok {
		t.Fatalf("missing target process metadata: %v", procNames)
	}
	if localPID == targetPID {
		t.Fatalf("local and target share pid %d", localPID)
	}
	if got := spansByName["client.migrate"]; got != localPID {
		t.Errorf("client.migrate on pid %d, want %d", got, localPID)
	}
	if got := spansByName["host.migratein"]; got != targetPID {
		t.Errorf("host.migratein on pid %d, want %d", got, targetPID)
	}
	if got := spansByName["core.restore"]; got != targetPID {
		t.Errorf("core.restore on pid %d, want %d", got, targetPID)
	}
}

func TestExportTraceFilters(t *testing.T) {
	tr := NewSeeded(11)
	a := tr.Begin("a")
	b := tr.Begin("b")
	a.End()
	b.End()
	wt := tr.ExportTrace(a.Context().TraceID)
	if len(wt.Spans) != 1 || wt.Spans[0].Name != "a" {
		t.Fatalf("ExportTrace leaked foreign spans: %+v", wt.Spans)
	}
	if !tr.ExportTrace(TraceID{}).Empty() {
		t.Fatalf("ExportTrace(zero) not empty")
	}
	var nilT *Tracer
	if !nilT.ExportTrace(a.Context().TraceID).Empty() {
		t.Fatalf("nil tracer ExportTrace not empty")
	}
	nilT.Adopt(wt) // must not panic
}

// TestAdoptDeduplicates covers the re-export pattern of the live system:
// a host re-exports its entire per-trace buffer on every request, so the
// client adopts overlapping shipments and must keep each span once.
func TestAdoptDeduplicates(t *testing.T) {
	client := NewSeeded(100)
	target := NewSeeded(200)

	root := client.Begin("client.migrate")
	ctx, err := Extract(root.Context().Inject())
	if err != nil {
		t.Fatal(err)
	}
	in := target.BeginRemote("host.migratein", ctx)
	in.Child("core.restore").End()
	in.End()

	first := target.ExportTrace(ctx.TraceID)
	first.Proc = "sgxhost target"
	client.Adopt(first)
	before := len(client.Completed())

	// The same buffer arrives again (a later request to the same host
	// re-exports everything), plus one genuinely new span.
	target.BeginRemote("host.list", ctx).End()
	second := target.ExportTrace(ctx.TraceID)
	second.Proc = "sgxhost target"
	client.Adopt(second)

	recs := client.Completed()
	if got, want := len(recs), before+1; got != want {
		t.Fatalf("after overlapping Adopt: %d spans, want %d: %+v", got, want, recs)
	}
	counts := map[SpanID]int{}
	for _, r := range recs {
		counts[r.SpanID]++
	}
	for id, n := range counts {
		if n != 1 {
			t.Errorf("span %v adopted %d times, want 1", id, n)
		}
	}
	root.End()
}

// TestSpanCapBoundsBuffer checks that the finished-span buffer cannot grow
// without bound: beyond the cap the oldest records are evicted, newest
// kept, and adopted spans obey the same bound.
func TestSpanCapBoundsBuffer(t *testing.T) {
	tr := NewSeeded(7)
	tr.SetSpanCap(8)
	for i := 0; i < 50; i++ {
		tr.Begin("local").End()
	}
	recs := tr.Completed()
	if len(recs) != 8 {
		t.Fatalf("capped buffer holds %d spans, want 8", len(recs))
	}
	// End order is preserved and the survivors are the newest: strictly
	// increasing Start offsets ending at the most recent span.
	for i := 1; i < len(recs); i++ {
		if recs[i].Start < recs[i-1].Start {
			t.Fatalf("eviction broke End order: %v after %v", recs[i].Start, recs[i-1].Start)
		}
	}

	// Adopted shipments are bounded too.
	remote := NewSeeded(9)
	for i := 0; i < 50; i++ {
		remote.Begin("remote").End()
	}
	wt := WireTrace{EpochUnixNano: 0, Spans: remote.Completed(), Proc: "peer"}
	tr.Adopt(wt)
	if got := len(tr.Completed()); got != 8 {
		t.Fatalf("capped buffer holds %d spans after Adopt, want 8", got)
	}

	// A fresh tracer starts with the default cap, not unbounded.
	def := NewSeeded(1)
	def.mu.Lock()
	defCap := def.maxDone
	def.mu.Unlock()
	if defCap != DefaultSpanCap {
		t.Fatalf("new tracer cap = %d, want DefaultSpanCap %d", defCap, DefaultSpanCap)
	}
	// SetSpanCap(0) lifts the bound.
	tr.SetSpanCap(0)
	for i := 0; i < 50; i++ {
		tr.Begin("more").End()
	}
	if got := len(tr.Completed()); got != 58 {
		t.Fatalf("uncapped buffer holds %d spans, want 58", got)
	}
}

func TestHTTPHandlerPprof(t *testing.T) {
	h := Handler(New(), NewMetrics(), NewJournal(0))
	req := httptest.NewRequest("GET", "/debug/pprof/", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != 200 {
		t.Fatalf("GET /debug/pprof/ = %d, want 200", rec.Code)
	}
	if !bytes.Contains(rec.Body.Bytes(), []byte("goroutine")) {
		t.Fatalf("pprof index missing profile listing:\n%s", rec.Body.String())
	}
}

package telemetry

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"testing"
)

// twoHostTrace simulates the client→source→target shipment chain in one
// process: a client roots the trace, the "target" tracer opens spans under
// the propagated context, exports them, and the client adopts the buffer.
func twoHostTrace(t *testing.T) (*Tracer, TraceID) {
	t.Helper()
	client := NewSeeded(100)
	target := NewSeeded(200)

	root := client.Begin("client.migrate")
	ctx, err := Extract(root.Context().Inject())
	if err != nil {
		t.Fatal(err)
	}

	in := target.BeginRemote("host.migratein", ctx)
	restore := in.Child("core.restore")
	restore.End()
	in.End()

	wt := target.ExportTrace(ctx.TraceID)
	wt.Proc = "sgxhost target"
	client.Adopt(wt)
	root.End()
	return client, ctx.TraceID
}

func TestExportAdoptMerge(t *testing.T) {
	client, traceID := twoHostTrace(t)
	recs := client.Completed()
	if len(recs) != 3 {
		t.Fatalf("merged buffer has %d spans, want 3: %+v", len(recs), recs)
	}
	names := map[string]SpanRecord{}
	for _, r := range recs {
		if r.TraceID != traceID {
			t.Errorf("span %q TraceID = %v, want %v", r.Name, r.TraceID, traceID)
		}
		names[r.Name] = r
	}
	for _, want := range []string{"client.migrate", "host.migratein", "core.restore"} {
		if _, ok := names[want]; !ok {
			t.Fatalf("merged trace missing span %q; have %v", want, names)
		}
	}
	// Cross-process parentage survives via SpanID links even though local
	// ID/Parent handles were zeroed on adoption.
	if got, want := names["host.migratein"].ParentSpan, names["client.migrate"].SpanID; got != want {
		t.Errorf("host.migratein ParentSpan = %v, want client span %v", got, want)
	}
	if names["host.migratein"].ID != 0 || names["host.migratein"].Parent != 0 {
		t.Errorf("adopted span kept remote-local handles: %+v", names["host.migratein"])
	}
	if got := names["host.migratein"].Proc; got != "sgxhost target" {
		t.Errorf("adopted span Proc = %q, want %q", got, "sgxhost target")
	}
	if got := names["client.migrate"].Proc; got != "" {
		t.Errorf("local span Proc = %q, want empty", got)
	}
	// Adopted tracks were remapped onto fresh local tracks.
	if names["host.migratein"].Track == names["client.migrate"].Track {
		t.Errorf("adopted span shares a local track")
	}
}

func TestMergedChromeTraceProcesses(t *testing.T) {
	client, traceID := twoHostTrace(t)
	var buf bytes.Buffer
	if err := client.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var trace struct {
		TraceEvents []struct {
			Name string            `json:"name"`
			Ph   string            `json:"ph"`
			PID  uint64            `json:"pid"`
			Args map[string]string `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &trace); err != nil {
		t.Fatalf("invalid trace JSON: %v", err)
	}
	procNames := map[string]uint64{}
	traceIDs := map[string]bool{}
	spansByName := map[string]uint64{}
	for _, ev := range trace.TraceEvents {
		if ev.Ph == "M" && ev.Name == "process_name" {
			procNames[ev.Args["name"]] = ev.PID
		}
		if ev.Ph == "X" || ev.Ph == "B" {
			if id := ev.Args["trace_id"]; id != "" {
				traceIDs[id] = true
			}
			spansByName[ev.Name] = ev.PID
		}
	}
	if len(traceIDs) != 1 || !traceIDs[traceID.String()] {
		t.Fatalf("merged trace has trace_ids %v, want exactly {%s}", traceIDs, traceID)
	}
	localPID, ok := procNames["sgxmig"]
	if !ok {
		t.Fatalf("missing sgxmig process metadata: %v", procNames)
	}
	targetPID, ok := procNames["sgxhost target"]
	if !ok {
		t.Fatalf("missing target process metadata: %v", procNames)
	}
	if localPID == targetPID {
		t.Fatalf("local and target share pid %d", localPID)
	}
	if got := spansByName["client.migrate"]; got != localPID {
		t.Errorf("client.migrate on pid %d, want %d", got, localPID)
	}
	if got := spansByName["host.migratein"]; got != targetPID {
		t.Errorf("host.migratein on pid %d, want %d", got, targetPID)
	}
	if got := spansByName["core.restore"]; got != targetPID {
		t.Errorf("core.restore on pid %d, want %d", got, targetPID)
	}
}

func TestExportTraceFilters(t *testing.T) {
	tr := NewSeeded(11)
	a := tr.Begin("a")
	b := tr.Begin("b")
	a.End()
	b.End()
	wt := tr.ExportTrace(a.Context().TraceID)
	if len(wt.Spans) != 1 || wt.Spans[0].Name != "a" {
		t.Fatalf("ExportTrace leaked foreign spans: %+v", wt.Spans)
	}
	if !tr.ExportTrace(TraceID{}).Empty() {
		t.Fatalf("ExportTrace(zero) not empty")
	}
	var nilT *Tracer
	if !nilT.ExportTrace(a.Context().TraceID).Empty() {
		t.Fatalf("nil tracer ExportTrace not empty")
	}
	nilT.Adopt(wt) // must not panic
}

func TestHTTPHandlerPprof(t *testing.T) {
	h := Handler(New(), NewMetrics())
	req := httptest.NewRequest("GET", "/debug/pprof/", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != 200 {
		t.Fatalf("GET /debug/pprof/ = %d, want 200", rec.Code)
	}
	if !bytes.Contains(rec.Body.Bytes(), []byte("goroutine")) {
		t.Fatalf("pprof index missing profile listing:\n%s", rec.Body.String())
	}
}

package telemetry

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
)

// Metrics is a registry of named instruments. A nil *Metrics hands out nil
// instruments, and every instrument method is a safe no-op on a nil
// receiver, so instrumented code looks up instruments once and uses them
// unconditionally on hot paths.
//
// Instruments are created on first lookup and live for the registry's
// lifetime; repeated lookups of the same name return the same instrument.
type Metrics struct {
	mu       sync.Mutex
	counters map[string]*Counter   // guarded by mu
	gauges   map[string]*Gauge     // guarded by mu
	hists    map[string]*Histogram // guarded by mu
	ratios   map[string]*Ratio     // guarded by mu
}

// NewMetrics returns an enabled registry.
func NewMetrics() *Metrics {
	return &Metrics{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		ratios:   make(map[string]*Ratio),
	}
}

// Counter returns the named monotonic counter, creating it if needed.
func (m *Metrics) Counter(name string) *Counter {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	c := m.counters[name]
	if c == nil {
		c = &Counter{}
		m.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it if needed.
func (m *Metrics) Gauge(name string) *Gauge {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	g := m.gauges[name]
	if g == nil {
		g = &Gauge{}
		m.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given
// upper-bound thresholds if needed. The first registration wins: later
// lookups return the existing histogram regardless of bounds, so callers
// agree on bucket layout by construction.
func (m *Metrics) Histogram(name string, bounds []int64) *Histogram {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	h := m.hists[name]
	if h == nil {
		h = NewHistogram(bounds)
		m.hists[name] = h
	}
	return h
}

// Ratio returns the named hit ratio, creating it if needed.
func (m *Metrics) Ratio(name string) *Ratio {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	r := m.ratios[name]
	if r == nil {
		r = &Ratio{}
		m.ratios[name] = r
	}
	return r
}

// Ratio tracks a hit rate: hits over total observations (delta-frame hit
// rate, cache hit rate). Observation is one or two atomic adds.
type Ratio struct {
	hits  atomic.Int64
	total atomic.Int64
}

// Observe files one observation; hit says whether it counts toward the
// numerator.
func (r *Ratio) Observe(hit bool) {
	if r == nil {
		return
	}
	if hit {
		r.hits.Add(1)
	}
	r.total.Add(1)
}

// Hits returns the numerator.
func (r *Ratio) Hits() int64 {
	if r == nil {
		return 0
	}
	return r.hits.Load()
}

// Total returns the denominator.
func (r *Ratio) Total() int64 {
	if r == nil {
		return 0
	}
	return r.total.Load()
}

// Value returns hits/total, or 0 with no observations.
func (r *Ratio) Value() float64 {
	if r == nil {
		return 0
	}
	t := r.total.Load()
	if t == 0 {
		return 0
	}
	return float64(r.hits.Load()) / float64(t)
}

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic instantaneous value (queue occupancy, frames in use).
type Gauge struct{ v atomic.Int64 }

// Set stores the current value.
func (g *Gauge) Set(n int64) {
	if g == nil {
		return
	}
	g.v.Store(n)
}

// Add moves the gauge by delta (negative to decrease).
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Value returns the current value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram counts int64 observations into fixed buckets. Bucket i counts
// observations v with v <= bounds[i] (and greater than every earlier
// bound); one extra overflow bucket counts the rest. Observation is a
// single atomic add, so concurrent observers never block each other.
type Histogram struct {
	bounds []int64        // immutable after NewHistogram
	counts []atomic.Int64 // len(bounds)+1; last is overflow
	sum    atomic.Int64
	total  atomic.Int64
	// exemplars holds, per bucket, the latest traced observation that
	// landed there (ObserveExemplar; last-write-wins), so a reader of the
	// p99 line can jump from the bucket to one concrete trace.
	exemplars []atomic.Pointer[Exemplar]
}

// Exemplar ties one bucketed observation to the trace it came from.
type Exemplar struct {
	Value   int64
	TraceID TraceID
	SpanID  SpanID
}

// NewHistogram builds a detached histogram (outside any registry) with the
// given sorted upper bounds. Useful for per-worker histograms that are
// merged into a registry-owned one afterwards.
func NewHistogram(bounds []int64) *Histogram {
	b := append([]int64(nil), bounds...)
	sort.Slice(b, func(i, j int) bool { return b[i] < b[j] })
	return &Histogram{
		bounds:    b,
		counts:    make([]atomic.Int64, len(b)+1),
		exemplars: make([]atomic.Pointer[Exemplar], len(b)+1),
	}
}

// Observe files one observation.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	i := sort.Search(len(h.bounds), func(i int) bool { return v <= h.bounds[i] })
	h.counts[i].Add(1)
	h.sum.Add(v)
	h.total.Add(1)
}

// ObserveExemplar files one observation and, when ctx names a sampled
// span, stamps it as the bucket's exemplar — the concrete trace a reader
// can open to see why that bucket was hit. An unsampled or zero context
// degrades to Observe, so the hot path never pays for dropped traces.
func (h *Histogram) ObserveExemplar(v int64, ctx Context) {
	if h == nil {
		return
	}
	i := sort.Search(len(h.bounds), func(i int) bool { return v <= h.bounds[i] })
	h.counts[i].Add(1)
	h.sum.Add(v)
	h.total.Add(1)
	if ctx.Sampled && !ctx.SpanID.IsZero() {
		h.exemplars[i].Store(&Exemplar{Value: v, TraceID: ctx.TraceID, SpanID: ctx.SpanID})
	}
}

// Merge folds o's observations into h. The bucket layouts must match.
// A nil h or o is a no-op.
func (h *Histogram) Merge(o *Histogram) error {
	if h == nil || o == nil {
		return nil
	}
	if len(h.bounds) != len(o.bounds) {
		return fmt.Errorf("telemetry: merge of mismatched histograms (%d vs %d buckets)", len(h.bounds), len(o.bounds))
	}
	for i, b := range h.bounds {
		if o.bounds[i] != b {
			return fmt.Errorf("telemetry: merge of mismatched histograms (bound %d: %d vs %d)", i, b, o.bounds[i])
		}
	}
	for i := range o.counts {
		h.counts[i].Add(o.counts[i].Load())
		// A merged-in exemplar fills buckets that have none locally.
		if ex := o.exemplars[i].Load(); ex != nil {
			h.exemplars[i].CompareAndSwap(nil, ex)
		}
	}
	h.sum.Add(o.sum.Load())
	h.total.Add(o.total.Load())
	return nil
}

// HistogramSnapshot is a consistent-enough point-in-time copy for export:
// each bucket is read atomically, though a concurrent Observe may land
// between bucket reads.
type HistogramSnapshot struct {
	Bounds []int64
	Counts []int64 // len(Bounds)+1; last is overflow
	Sum    int64
	Count  int64
	// Exemplars has one entry per bucket; nil where no traced
	// observation has landed in that bucket.
	Exemplars []*Exemplar
}

// Snapshot copies the histogram's current contents.
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	s := HistogramSnapshot{
		Bounds:    append([]int64(nil), h.bounds...),
		Counts:    make([]int64, len(h.counts)),
		Sum:       h.sum.Load(),
		Count:     h.total.Load(),
		Exemplars: make([]*Exemplar, len(h.counts)),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
		s.Exemplars[i] = h.exemplars[i].Load()
	}
	return s
}

// WriteText dumps every instrument as sorted plain text, one line per
// scalar and an indented block per histogram — the /metrics wire format.
func (m *Metrics) WriteText(w io.Writer) error {
	if m == nil {
		_, err := fmt.Fprintln(w, "# telemetry disabled")
		return err
	}
	m.mu.Lock()
	counters := make(map[string]*Counter, len(m.counters))
	for k, v := range m.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(m.gauges))
	for k, v := range m.gauges {
		gauges[k] = v
	}
	hists := make(map[string]*Histogram, len(m.hists))
	for k, v := range m.hists {
		hists[k] = v
	}
	ratios := make(map[string]*Ratio, len(m.ratios))
	for k, v := range m.ratios {
		ratios[k] = v
	}
	m.mu.Unlock()

	for _, name := range sortedKeys(counters) {
		if _, err := fmt.Fprintf(w, "counter %s %d\n", name, counters[name].Value()); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(gauges) {
		if _, err := fmt.Fprintf(w, "gauge %s %d\n", name, gauges[name].Value()); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(ratios) {
		r := ratios[name]
		if _, err := fmt.Fprintf(w, "ratio %s %d/%d = %.4f\n", name, r.Hits(), r.Total(), r.Value()); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(hists) {
		s := hists[name].Snapshot()
		if _, err := fmt.Fprintf(w, "histogram %s count=%d sum=%d p50=%d p90=%d p99=%d\n",
			name, s.Count, s.Sum, int64(s.Quantile(0.50)), int64(s.Quantile(0.90)), int64(s.Quantile(0.99))); err != nil {
			return err
		}
		for i, b := range s.Bounds {
			if _, err := fmt.Fprintf(w, "  le %d: %d%s\n", b, s.Counts[i], exemplarSuffix(s.Exemplars[i])); err != nil {
				return err
			}
		}
		last := len(s.Counts) - 1
		if _, err := fmt.Fprintf(w, "  le +inf: %d%s\n", s.Counts[last], exemplarSuffix(s.Exemplars[last])); err != nil {
			return err
		}
	}
	return nil
}

// exemplarSuffix renders a bucket's exemplar for WriteText: the concrete
// trace/span a reader can pull up to see one observation that landed in
// the bucket (e.g. a p99 vmm.pagecopy chunk).
func exemplarSuffix(ex *Exemplar) string {
	if ex == nil {
		return ""
	}
	return fmt.Sprintf(" # exemplar trace=%s span=%s value=%d", ex.TraceID, ex.SpanID, ex.Value)
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

package telemetry

import "testing"

// BenchmarkNopTracer measures the disabled-telemetry cost exactly as the
// page-copy path pays it: one Begin/End pair plus one histogram
// observation per iteration, all on nil receivers.
func BenchmarkNopTracer(b *testing.B) {
	var tr *Tracer
	var m *Metrics
	h := m.Histogram("vmm.pagecopy.ns", nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := tr.Begin("page-copy")
		h.Observe(int64(i))
		sp.End()
	}
}

// BenchmarkEnabledSpan is the enabled counterpart, for the docs' overhead
// table; no assertion, just a number.
func BenchmarkEnabledSpan(b *testing.B) {
	tr := New()
	root := tr.Begin("bench")
	defer root.End()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		root.Child("page-copy").End()
	}
}

// TestNopTracerOverhead is the acceptance gate: the no-op tracer must add
// under 5ns per operation to the page-copy path. Skipped under the race
// detector and -short, where wall-clock numbers mean nothing.
func TestNopTracerOverhead(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector skews timings")
	}
	if testing.Short() {
		t.Skip("timing assertion; skipped in -short")
	}
	best := int64(1 << 62)
	for i := 0; i < 3; i++ {
		r := testing.Benchmark(BenchmarkNopTracer)
		if ns := r.NsPerOp(); ns < best {
			best = ns
		}
	}
	if best >= 5 {
		t.Errorf("no-op tracer costs %dns/op on the page-copy path, want <5ns", best)
	}
}

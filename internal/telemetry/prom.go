package telemetry

import (
	"fmt"
	"io"
	"strings"
)

// promName maps an instrument name to the Prometheus metric-name charset:
// dots and every other illegal rune become underscores, and a leading
// digit is prefixed. "host.migrations.out" → "host_migrations_out".
func promName(name string) string {
	var b strings.Builder
	b.Grow(len(name))
	for i, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == ':':
			b.WriteRune(r)
		case r >= '0' && r <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// WriteProm dumps every instrument in the Prometheus text exposition
// format (version 0.0.4): counters as <name>_total, gauges plain, ratios
// as a hit/observation counter pair, histograms with cumulative
// le-labelled buckets plus _sum and _count. Names are sanitized by
// promName and emitted sorted, each with # HELP/# TYPE headers, so any
// Prometheus-compatible scraper can ingest the same registry /metrics
// serves in the homegrown plain format. A nil registry writes only a
// comment, which still parses as an empty exposition.
func (m *Metrics) WriteProm(w io.Writer) error {
	if m == nil {
		_, err := fmt.Fprintln(w, "# telemetry disabled")
		return err
	}
	m.mu.Lock()
	counters := make(map[string]*Counter, len(m.counters))
	for k, v := range m.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(m.gauges))
	for k, v := range m.gauges {
		gauges[k] = v
	}
	hists := make(map[string]*Histogram, len(m.hists))
	for k, v := range m.hists {
		hists[k] = v
	}
	ratios := make(map[string]*Ratio, len(m.ratios))
	for k, v := range m.ratios {
		ratios[k] = v
	}
	m.mu.Unlock()

	for _, name := range sortedKeys(counters) {
		pn := promName(name) + "_total"
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n",
			pn, name, pn, pn, counters[name].Value()); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(gauges) {
		pn := promName(name)
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n",
			pn, name, pn, pn, gauges[name].Value()); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(ratios) {
		r := ratios[name]
		hitName := promName(name) + "_hits_total"
		obsName := promName(name) + "_observations_total"
		if _, err := fmt.Fprintf(w, "# HELP %s hits of ratio %s\n# TYPE %s counter\n%s %d\n",
			hitName, name, hitName, hitName, r.Hits()); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "# HELP %s observations of ratio %s\n# TYPE %s counter\n%s %d\n",
			obsName, name, obsName, obsName, r.Total()); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(hists) {
		s := hists[name].Snapshot()
		pn := promName(name)
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", pn, name, pn); err != nil {
			return err
		}
		// Prometheus buckets are cumulative; the homegrown snapshot's are
		// per-bucket, so accumulate while emitting.
		var cum int64
		for i, b := range s.Bounds {
			cum += s.Counts[i]
			if _, err := fmt.Fprintf(w, "%s_bucket{le=\"%d\"} %d\n", pn, b, cum); err != nil {
				return err
			}
		}
		cum += s.Counts[len(s.Counts)-1]
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n%s_sum %d\n%s_count %d\n",
			pn, cum, pn, s.Sum, pn, s.Count); err != nil {
			return err
		}
	}
	return nil
}

// CounterValues snapshots every counter by name. The fleet federator
// scrapes it (via the OpEvents response) to build per-host rate series; a
// nil registry snapshots to nil.
func (m *Metrics) CounterValues() map[string]int64 {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[string]int64, len(m.counters))
	for k, c := range m.counters {
		out[k] = c.Value()
	}
	return out
}

package telemetry

import (
	"bufio"
	"bytes"
	"regexp"
	"strings"
	"testing"
)

// TestPromName pins the sanitizer: dotted instrument names become legal
// Prometheus metric names and nothing else leaks through.
func TestPromName(t *testing.T) {
	cases := map[string]string{
		"host.migrations.out": "host_migrations_out",
		"epcman.frames.free":  "epcman_frames_free",
		"weird name-1":        "weird_name_1",
		"9lives":              "_9lives",
		"a:b_c":               "a:b_c",
	}
	for in, want := range cases {
		if got := promName(in); got != want {
			t.Errorf("promName(%q) = %q, want %q", in, got, want)
		}
	}
}

var (
	promSample  = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{le="(\+Inf|-?\d+)"\})? -?\d+(\.\d+)?$`)
	promComment = regexp.MustCompile(`^# (HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]* .+$`)
)

// TestWritePromParses fills one instrument of each family and checks the
// exposition is well-formed line by line — every sample matches the text
// format grammar, every metric has a TYPE declared before its samples,
// and histogram buckets are cumulative and end at +Inf.
func TestWritePromParses(t *testing.T) {
	m := NewMetrics()
	m.Counter("host.migrations.out").Add(3)
	m.Gauge("epcman.frames.free").Set(120)
	m.Ratio("vmm.delta.hit").Observe(true)
	m.Ratio("vmm.delta.hit").Observe(false)
	h := m.Histogram("vmm.pagecopy.ns", []int64{100, 1000})
	h.Observe(50)
	h.Observe(500)
	h.Observe(5000)

	var buf bytes.Buffer
	if err := m.WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	typed := map[string]bool{}
	sc := bufio.NewScanner(strings.NewReader(out))
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "#") {
			if !promComment.MatchString(line) {
				t.Errorf("malformed comment line %q", line)
			}
			if strings.HasPrefix(line, "# TYPE ") {
				typed[strings.Fields(line)[2]] = true
			}
			continue
		}
		if !promSample.MatchString(line) {
			t.Errorf("malformed sample line %q", line)
			continue
		}
		base := strings.SplitN(strings.Fields(line)[0], "{", 2)[0]
		metric := strings.TrimSuffix(strings.TrimSuffix(strings.TrimSuffix(base, "_bucket"), "_sum"), "_count")
		if !typed[metric] && !typed[base] {
			t.Errorf("sample %q has no preceding # TYPE", line)
		}
	}
	for _, want := range []string{
		"# TYPE host_migrations_out_total counter",
		"host_migrations_out_total 3",
		"# TYPE epcman_frames_free gauge",
		"epcman_frames_free 120",
		"vmm_delta_hit_hits_total 1",
		"vmm_delta_hit_observations_total 2",
		"# TYPE vmm_pagecopy_ns histogram",
		`vmm_pagecopy_ns_bucket{le="100"} 1`,
		`vmm_pagecopy_ns_bucket{le="1000"} 2`,
		`vmm_pagecopy_ns_bucket{le="+Inf"} 3`,
		"vmm_pagecopy_ns_sum 5550",
		"vmm_pagecopy_ns_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

// TestWritePromNil pins the disabled form: a comment-only document, which
// still parses as an empty exposition.
func TestWritePromNil(t *testing.T) {
	var m *Metrics
	var buf bytes.Buffer
	if err := m.WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	if got := buf.String(); got != "# telemetry disabled\n" {
		t.Fatalf("nil exposition = %q", got)
	}
	if m.CounterValues() != nil {
		t.Fatal("nil CounterValues should be nil")
	}
}

// TestCounterValues checks the federation snapshot sees every counter at
// its current value without disturbing the registry.
func TestCounterValues(t *testing.T) {
	m := NewMetrics()
	m.Counter("a").Add(2)
	m.Counter("b").Inc()
	vals := m.CounterValues()
	if len(vals) != 2 || vals["a"] != 2 || vals["b"] != 1 {
		t.Fatalf("CounterValues = %v", vals)
	}
	m.Counter("a").Inc()
	if vals["a"] != 2 {
		t.Fatal("snapshot must not alias live counters")
	}
}

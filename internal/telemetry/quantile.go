package telemetry

import "math"

// Quantile estimation over bucketed histograms. Fixed buckets give exact
// counts but coarse quantiles; LogBounds trades one bucket per doubling
// for a bounded relative error (the estimate is within 2x of the true
// value at any scale), which is the usual deal for latency distributions
// whose tail spans several orders of magnitude — exactly the shape the
// page-copy and EPC-eviction timings have.

// LogBounds builds power-of-two histogram bounds covering [lo, hi]:
// max(lo,1), then doubling until a bound >= hi is included. With
// nanosecond observations, LogBounds(1e3, 1e9) spans 1µs..~1s in 21
// buckets. The slice is freshly allocated and sorted ascending, ready for
// Metrics.Histogram.
func LogBounds(lo, hi int64) []int64 {
	if lo < 1 {
		lo = 1
	}
	if hi < lo {
		hi = lo
	}
	var bounds []int64
	v := lo
	for {
		bounds = append(bounds, v)
		if v >= hi || v > math.MaxInt64/2 {
			return bounds
		}
		v *= 2
	}
}

// Quantile estimates the q-th quantile (0 <= q <= 1) of the observed
// distribution by linear interpolation within the bucket holding the
// rank-q observation. Observations that landed in the overflow bucket are
// attributed to its lower edge (the largest bound) — the histogram has no
// upper limit to interpolate toward, so tail quantiles beyond the last
// bound are underestimates, visible as the estimate pinning at the top
// bound. An empty snapshot returns 0.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 || len(s.Counts) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	var cum float64
	for i, c := range s.Counts {
		if c == 0 {
			continue
		}
		next := cum + float64(c)
		if rank > next {
			cum = next
			continue
		}
		var lower float64
		if i > 0 {
			lower = float64(s.Bounds[i-1])
		}
		if i >= len(s.Bounds) {
			// Overflow bucket: no upper edge to interpolate toward.
			return float64(s.Bounds[len(s.Bounds)-1])
		}
		upper := float64(s.Bounds[i])
		frac := (rank - cum) / float64(c)
		if frac < 0 {
			frac = 0
		}
		cum = next
		return lower + (upper-lower)*frac
	}
	// All counts consumed without reaching rank (concurrent-update skew):
	// fall back to the top edge.
	return float64(s.Bounds[len(s.Bounds)-1])
}

// Quantile estimates the q-th quantile of the live histogram. Safe on a
// nil histogram (returns 0).
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	return h.Snapshot().Quantile(q)
}

package telemetry

import (
	"strings"
	"testing"
)

func TestLogBounds(t *testing.T) {
	got := LogBounds(1000, 16000)
	want := []int64{1000, 2000, 4000, 8000, 16000}
	if len(got) != len(want) {
		t.Fatalf("LogBounds = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("LogBounds = %v, want %v", got, want)
		}
	}
	if got := LogBounds(0, 4); len(got) != 3 || got[0] != 1 || got[2] != 4 {
		t.Fatalf("LogBounds(0,4) = %v, want [1 2 4]", got)
	}
	if got := LogBounds(5, 1); len(got) != 1 || got[0] != 5 {
		t.Fatalf("LogBounds(5,1) = %v, want [5]", got)
	}
	// hi beyond the overflow guard terminates rather than wrapping.
	huge := LogBounds(1, 1<<62+1)
	if len(huge) == 0 || huge[len(huge)-1] < 1<<62 {
		t.Fatalf("LogBounds overflow guard broken: tail %v", huge[len(huge)-1])
	}
}

func TestQuantileUniform(t *testing.T) {
	h := NewHistogram(LogBounds(1, 1024))
	for v := int64(1); v <= 1000; v++ {
		h.Observe(v)
	}
	// Log buckets bound the relative error at 2x; check the estimates land
	// within the bucket that truly holds the quantile.
	checks := []struct {
		q        float64
		lo, hi   float64
		trueward float64
	}{
		{0.50, 256, 512, 500},
		{0.90, 512, 1024, 900},
		{0.99, 512, 1024, 990},
	}
	for _, c := range checks {
		got := h.Quantile(c.q)
		if got < c.lo || got > c.hi {
			t.Errorf("Quantile(%v) = %v, want within [%v, %v] (true %v)", c.q, got, c.lo, c.hi, c.trueward)
		}
	}
	if got := h.Quantile(0); got < 0 || got > 1 {
		t.Errorf("Quantile(0) = %v, want first bucket", got)
	}
}

func TestQuantileEdgeCases(t *testing.T) {
	var nilH *Histogram
	if got := nilH.Quantile(0.5); got != 0 {
		t.Errorf("nil histogram Quantile = %v, want 0", got)
	}
	empty := NewHistogram([]int64{10, 20})
	if got := empty.Quantile(0.5); got != 0 {
		t.Errorf("empty histogram Quantile = %v, want 0", got)
	}
	// All mass in the overflow bucket pins to the top bound.
	over := NewHistogram([]int64{10, 20})
	over.Observe(1000)
	over.Observe(2000)
	if got := over.Quantile(0.5); got != 20 {
		t.Errorf("overflow-only Quantile = %v, want 20 (top bound)", got)
	}
	// Out-of-range q clamps.
	one := NewHistogram([]int64{10})
	one.Observe(5)
	if got := one.Quantile(-1); got < 0 || got > 10 {
		t.Errorf("Quantile(-1) = %v, want clamped into [0,10]", got)
	}
	if got := one.Quantile(2); got < 0 || got > 10 {
		t.Errorf("Quantile(2) = %v, want clamped into [0,10]", got)
	}
}

func TestWriteTextQuantileColumns(t *testing.T) {
	m := NewMetrics()
	h := m.Histogram("lat.ns", LogBounds(1, 64))
	for v := int64(1); v <= 100; v++ {
		h.Observe(v)
	}
	var sb strings.Builder
	if err := m.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	line := sb.String()
	for _, col := range []string{"p50=", "p90=", "p99="} {
		if !strings.Contains(line, col) {
			t.Errorf("WriteText missing %s column:\n%s", col, line)
		}
	}
}

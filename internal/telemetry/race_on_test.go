//go:build race

package telemetry

// raceEnabled reports whether the race detector instruments this build;
// the no-op overhead assertion is meaningless with its ~10x slowdown.
const raceEnabled = true

package telemetry

import (
	"strings"
	"sync"
	"testing"
)

func TestRatio(t *testing.T) {
	m := NewMetrics()
	r := m.Ratio("vmm.delta.hitrate")
	if r != m.Ratio("vmm.delta.hitrate") {
		t.Fatal("repeated lookup returned a different instrument")
	}
	if r.Value() != 0 {
		t.Fatalf("empty ratio = %v, want 0", r.Value())
	}
	for i := 0; i < 10; i++ {
		r.Observe(i%4 == 0) // 3 hits of 10
	}
	if r.Hits() != 3 || r.Total() != 10 {
		t.Fatalf("hits/total = %d/%d, want 3/10", r.Hits(), r.Total())
	}
	if v := r.Value(); v != 0.3 {
		t.Fatalf("value = %v, want 0.3", v)
	}

	var sb strings.Builder
	if err := m.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "ratio vmm.delta.hitrate 3/10 = 0.3000") {
		t.Fatalf("WriteText missing ratio line:\n%s", sb.String())
	}
}

func TestRatioNilSafe(t *testing.T) {
	var m *Metrics
	r := m.Ratio("x")
	r.Observe(true)
	if r.Hits() != 0 || r.Total() != 0 || r.Value() != 0 {
		t.Fatal("nil ratio must be a zero no-op")
	}
}

func TestRatioConcurrent(t *testing.T) {
	r := NewMetrics().Ratio("r")
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				r.Observe(i%2 == 0)
			}
		}()
	}
	wg.Wait()
	if r.Hits() != 4000 || r.Total() != 8000 {
		t.Fatalf("hits/total = %d/%d, want 4000/8000", r.Hits(), r.Total())
	}
}

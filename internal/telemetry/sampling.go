package telemetry

import (
	"encoding/binary"
	"math"
)

// Head-based sampling: the process that roots a trace decides once, at
// Begin, whether the trace is kept, and the decision travels with the
// Context so downstream processes agree. Unsampled spans still run (Child/
// Fork/Annotate all work, ActiveCount still leak-checks them) but their
// finished records are parked in a per-trace pending buffer instead of the
// export buffer; when the trace's last span ends the buffer is dropped —
// unless some span in the trace Failed with a non-nil error, in which case
// the whole trace is promoted to the export buffer. That "always keep on
// error" escape hatch is what makes p ≪ 1 safe for always-on production
// tracing: the traces someone will actually want to look at survive.

// traceState tracks one unsampled trace until its last span ends.
type traceState struct {
	open    int          // spans begun but not yet ended
	failed  bool         // some span Failed with a non-nil error
	pending []SpanRecord // finished spans, awaiting the keep/drop decision
}

// SetSampling installs the head-based sampling probability for traces
// rooted at this tracer from now on: 1 (the default) keeps everything,
// 0 keeps only failed traces, values in between keep that fraction —
// decided deterministically from the TraceID, so all tracers holding the
// same trace agree. Remotely-rooted spans (BeginRemote with a non-zero
// context) ignore p and honor the root's decision. Safe on a nil tracer.
func (t *Tracer) SetSampling(p float64) {
	if t == nil {
		return
	}
	if p < 0 {
		p = 0
	} else if p > 1 {
		p = 1
	}
	t.sampleP.Store(math.Float64bits(p))
}

// sampleTrace makes the head decision for a locally-rooted trace. The
// decision is a pure function of (p, TraceID): the top 53 bits of the ID
// map to [0,1) and are compared against p.
func (t *Tracer) sampleTrace(id TraceID) bool {
	p := math.Float64frombits(t.sampleP.Load())
	if p >= 1 {
		return true
	}
	if p <= 0 {
		return false
	}
	v := binary.BigEndian.Uint64(id[:8])
	return float64(v>>11)/(1<<53) < p
}

// trackUnsampledLocked notes one more open span in an unsampled trace,
// creating the trace's state on first use. t.mu must be held.
func (t *Tracer) trackUnsampledLocked(root uint64) {
	st := t.traces[root]
	if st == nil {
		st = &traceState{}
		t.traces[root] = st
	}
	st.open++
}

// markTraceFailed flags an unsampled trace for promotion: it will be kept
// when it completes. Called by Span.Fail before End files the record.
func (t *Tracer) markTraceFailed(s *Span) {
	if t == nil || s.sampled {
		return
	}
	t.mu.Lock()
	if st := t.traces[s.root]; st != nil {
		st.failed = true
	}
	t.mu.Unlock()
}

// recordUnsampledLocked files a finished span of an unsampled trace and
// resolves the trace when its last span ends. t.mu must be held.
func (t *Tracer) recordUnsampledLocked(root uint64, rec SpanRecord) {
	st := t.traces[root]
	if st == nil {
		return // trace already resolved; a duplicate End lost the race
	}
	st.pending = append(st.pending, rec)
	st.open--
	if st.open > 0 {
		return
	}
	if st.failed {
		t.appendDoneLocked(st.pending...)
	}
	delete(t.traces, root)
}

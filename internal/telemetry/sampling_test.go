package telemetry

import (
	"errors"
	"testing"
)

// pendingTraceStates counts in-flight unsampled traces, for leak checks.
func pendingTraceStates(tr *Tracer) int {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	return len(tr.traces)
}

func TestSamplingZeroDropsCompletedTrace(t *testing.T) {
	tr := NewSeeded(3)
	tr.SetSampling(0)
	root := tr.Begin("root")
	child := root.Child("child")
	if root.Context().Sampled {
		t.Fatalf("p=0 trace reports Sampled")
	}
	child.End()
	root.End()
	if got := tr.Completed(); len(got) != 0 {
		t.Fatalf("p=0 kept %d spans, want 0", len(got))
	}
	if got := tr.ActiveCount(); got != 0 {
		t.Fatalf("ActiveCount = %d after trace completed, want 0", got)
	}
	if n := pendingTraceStates(tr); n != 0 {
		t.Fatalf("trace state leaked: %d entries", n)
	}
}

func TestSamplingFailedTraceAlwaysKept(t *testing.T) {
	tr := NewSeeded(3)
	tr.SetSampling(0)
	root := tr.Begin("root")
	child := root.Child("child")
	child.Fail(errors.New("boom"))
	root.End()
	recs := tr.Completed()
	if len(recs) != 2 {
		t.Fatalf("failed trace kept %d spans, want 2", len(recs))
	}
	found := false
	for _, r := range recs {
		for _, a := range r.Attrs {
			if a.Key == "error" && a.Val == "boom" {
				found = true
			}
		}
	}
	if !found {
		t.Fatalf("error attribute missing from kept spans: %+v", recs)
	}
	if n := pendingTraceStates(tr); n != 0 {
		t.Fatalf("trace state leaked: %d entries", n)
	}
}

func TestSamplingFailNilIsNotAFailure(t *testing.T) {
	tr := NewSeeded(3)
	tr.SetSampling(0)
	root := tr.Begin("root")
	root.Fail(nil) // success path spelled via Fail
	if got := tr.Completed(); len(got) != 0 {
		t.Fatalf("Fail(nil) kept %d spans, want 0", len(got))
	}
}

func TestSamplingDecisionFollowsContext(t *testing.T) {
	src := NewSeeded(5) // p=1: sampled
	dst := NewSeeded(6)
	dst.SetSampling(0) // target would drop locally-rooted traces

	parent := src.Begin("client.migrate")
	remote := dst.BeginRemote("host.migratein", parent.Context())
	if !remote.Context().Sampled {
		t.Fatalf("remote span ignored the root's sampled=true decision")
	}
	remote.End()
	parent.End()
	if got := len(dst.Completed()); got != 1 {
		t.Fatalf("target kept %d spans, want 1 (root decided sampled)", got)
	}

	// And the inverse: unsampled root decision wins over target's p=1.
	src2 := NewSeeded(7)
	src2.SetSampling(0)
	dst2 := NewSeeded(8)
	p2 := src2.Begin("client.migrate")
	r2 := dst2.BeginRemote("host.migratein", p2.Context())
	if r2.Context().Sampled {
		t.Fatalf("remote span ignored the root's sampled=false decision")
	}
	r2.End()
	p2.End()
	if got := len(dst2.Completed()); got != 0 {
		t.Fatalf("target kept %d spans, want 0 (root decided unsampled)", got)
	}
}

func TestSamplingDeterministicPerTraceID(t *testing.T) {
	tr := NewSeeded(9)
	tr.SetSampling(0.5)
	kept, dropped := 0, 0
	for i := 0; i < 200; i++ {
		sp := tr.Begin("op")
		id := sp.Context().TraceID
		want := tr.sampleTrace(id) // pure function of (p, id): re-asking must agree
		if got := sp.Context().Sampled; got != want {
			t.Fatalf("span %d: Sampled=%v but sampleTrace=%v", i, got, want)
		}
		if want {
			kept++
		} else {
			dropped++
		}
		sp.End()
	}
	// With 200 independent uniform draws at p=0.5 both sides should appear;
	// the bound is loose enough to never flake for a fixed seed anyway.
	if kept == 0 || dropped == 0 {
		t.Fatalf("p=0.5 over 200 traces: kept=%d dropped=%d, want both nonzero", kept, dropped)
	}
	if got := len(tr.Completed()); got != kept {
		t.Fatalf("Completed has %d spans, want %d", got, kept)
	}
}

func TestSetSamplingNilSafe(t *testing.T) {
	var tr *Tracer
	tr.SetSampling(0.3) // must not panic
}

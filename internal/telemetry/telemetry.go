// Package telemetry is the repository's zero-dependency observability
// layer: a goroutine-safe span tracer and a metrics registry (counters,
// gauges, fixed-bucket histograms), with exporters for the Chrome
// trace-event JSON format (chrome://tracing, https://ui.perfetto.dev), a
// plain-text snapshot dump, and a live HTTP handler.
//
// The disabled state is the nil pointer: every method on *Tracer, *Span
// and the metric instruments is a safe no-op on a nil receiver, so
// instrumented code threads a possibly-nil handle through hot paths
// without branching, and the disabled cost is a couple of nil checks
// (see BenchmarkNopTracer). There is no global state; each migration,
// benchmark run or daemon owns its own Tracer/Metrics pair.
//
// Span taxonomy, metric names and how to open a trace in Perfetto are
// documented in docs/TELEMETRY.md.
package telemetry

import (
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Attr is one key/value annotation on a span. Values are strings so the
// exporters stay allocation-simple; use the constructors for other types.
type Attr struct {
	Key string
	Val string
}

// String builds a string attribute.
func String(key, val string) Attr { return Attr{Key: key, Val: val} }

// Int builds an integer attribute.
func Int(key string, v int) Attr { return Attr{Key: key, Val: strconv.Itoa(v)} }

// Int64 builds a 64-bit integer attribute.
func Int64(key string, v int64) Attr { return Attr{Key: key, Val: strconv.FormatInt(v, 10)} }

// Duration builds a duration attribute.
func Duration(key string, d time.Duration) Attr { return Attr{Key: key, Val: d.String()} }

// SpanRecord is one finished (or, during live export, still-running) span
// as the exporters and tests see it. Start is the offset from the
// tracer's epoch; Dur is zero while the span is running.
type SpanRecord struct {
	Name   string
	ID     uint64
	Parent uint64 // 0 for root spans
	Track  uint64 // rendering row; children inherit it, Fork opens a new one
	Start  time.Duration
	Dur    time.Duration
	Attrs  []Attr
}

// Tracer collects spans. A nil *Tracer is the no-op tracer: Begin returns
// a nil *Span and the whole span API degenerates to nil checks.
type Tracer struct {
	epoch  time.Time
	ids    atomic.Uint64
	tracks atomic.Uint64

	mu   sync.Mutex
	done []SpanRecord     // guarded by mu
	live map[uint64]*Span // guarded by mu
}

// New returns an enabled tracer whose span timestamps are relative to now.
func New() *Tracer {
	return &Tracer{epoch: time.Now(), live: make(map[uint64]*Span)}
}

// Begin starts a root span on a fresh track.
func (t *Tracer) Begin(name string, attrs ...Attr) *Span {
	if t == nil {
		return nil
	}
	return t.newSpan(name, 0, t.tracks.Add(1), attrs)
}

func (t *Tracer) newSpan(name string, parent, track uint64, attrs []Attr) *Span {
	s := &Span{
		tr:     t,
		name:   name,
		id:     t.ids.Add(1),
		parent: parent,
		track:  track,
		start:  time.Now(),
		attrs:  append([]Attr(nil), attrs...),
	}
	t.mu.Lock()
	t.live[s.id] = s
	t.mu.Unlock()
	return s
}

// record files a finished span. Called by Span.End without Span.mu held,
// so the only lock nesting in the package is none at all.
func (t *Tracer) record(rec SpanRecord) {
	t.mu.Lock()
	delete(t.live, rec.ID)
	t.done = append(t.done, rec)
	t.mu.Unlock()
}

// Completed returns a copy of every finished span, in End order.
func (t *Tracer) Completed() []SpanRecord {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]SpanRecord(nil), t.done...)
}

// ByName returns the finished spans with the given name, in End order.
func (t *Tracer) ByName(name string) []SpanRecord {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	var out []SpanRecord
	for _, r := range t.done {
		if r.Name == name {
			out = append(out, r)
		}
	}
	return out
}

// ActiveCount returns how many spans have begun but not ended — useful for
// leak checks in tests and for the /debug/trace status line.
func (t *Tracer) ActiveCount() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.live)
}

// snapshot copies the export state without holding any span lock.
func (t *Tracer) snapshot() (done []SpanRecord, live []*Span) {
	t.mu.Lock()
	defer t.mu.Unlock()
	done = append([]SpanRecord(nil), t.done...)
	live = make([]*Span, 0, len(t.live))
	for _, s := range t.live {
		live = append(live, s)
	}
	return done, live
}

// Span is one timed operation. Spans nest via Child (same rendering track)
// and Fork (new track, for work that overlaps the parent on another
// goroutine). All methods are safe on a nil receiver and End is
// idempotent, so error paths can End a span a second time harmlessly.
type Span struct {
	tr     *Tracer
	name   string
	id     uint64
	parent uint64
	track  uint64
	start  time.Time

	mu    sync.Mutex
	attrs []Attr        // guarded by mu
	ended bool          // guarded by mu
	dur   time.Duration // guarded by mu
}

// Child starts a sub-span on the parent's track: sequential phases of the
// same logical activity.
func (s *Span) Child(name string, attrs ...Attr) *Span {
	if s == nil {
		return nil
	}
	return s.tr.newSpan(name, s.id, s.track, attrs)
}

// Fork starts a sub-span on a fresh track: concurrent work (a goroutine)
// whose interval overlaps the parent, so the trace viewer renders it on
// its own row instead of mis-nesting it.
func (s *Span) Fork(name string, attrs ...Attr) *Span {
	if s == nil {
		return nil
	}
	return s.tr.newSpan(name, s.id, s.tr.tracks.Add(1), attrs)
}

// Annotate appends attributes to a running span.
func (s *Span) Annotate(attrs ...Attr) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.attrs = append(s.attrs, attrs...)
	s.mu.Unlock()
}

// End finishes the span and files it with the tracer. Idempotent.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	s.dur = time.Since(s.start)
	rec := s.recordLocked()
	s.mu.Unlock()
	s.tr.record(rec)
}

// Fail annotates the span with err (when non-nil) and ends it. Fault
// paths use it so aborted phases stay visible in the trace.
func (s *Span) Fail(err error) {
	if s == nil {
		return
	}
	if err != nil {
		s.Annotate(Attr{Key: "error", Val: err.Error()})
	}
	s.End()
}

// Duration returns the measured duration: zero until End.
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dur
}

// recordLocked builds the span's export record; s.mu must be held.
func (s *Span) recordLocked() SpanRecord {
	return SpanRecord{
		Name:   s.name,
		ID:     s.id,
		Parent: s.parent,
		Track:  s.track,
		Start:  s.start.Sub(s.tr.epoch),
		Dur:    s.dur,
		Attrs:  append([]Attr(nil), s.attrs...),
	}
}

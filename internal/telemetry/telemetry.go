// Package telemetry is the repository's zero-dependency observability
// layer: a goroutine-safe span tracer and a metrics registry (counters,
// gauges, fixed- and log-bucketed histograms with quantile estimates),
// with exporters for the Chrome trace-event JSON format
// (chrome://tracing, https://ui.perfetto.dev), a plain-text snapshot dump,
// and a live HTTP handler that also mounts net/http/pprof.
//
// Traces are distributed: every span carries a TraceID/SpanID pair, the
// Context Inject/Extract helpers move them across process boundaries in a
// W3C-traceparent-style header, BeginRemote parents a local span under a
// remote one, and WireTrace/ExportTrace/Adopt ship finished span buffers
// between processes so an sgxhost→sgxhost migration exports as one merged
// trace. Head-based sampling (SetSampling) with always-keep-on-error makes
// tracing cheap enough to leave on permanently.
//
// The disabled state is the nil pointer: every method on *Tracer, *Span
// and the metric instruments is a safe no-op on a nil receiver, so
// instrumented code threads a possibly-nil handle through hot paths
// without branching, and the disabled cost is a couple of nil checks
// (see BenchmarkNopTracer). There is no global state; each migration,
// benchmark run or daemon owns its own Tracer/Metrics pair.
//
// Span taxonomy, metric names and how to open a trace in Perfetto are
// documented in docs/TELEMETRY.md.
package telemetry

import (
	"math"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Attr is one key/value annotation on a span. Values are strings so the
// exporters stay allocation-simple; use the constructors for other types.
type Attr struct {
	Key string
	Val string
}

// String builds a string attribute.
func String(key, val string) Attr { return Attr{Key: key, Val: val} }

// Int builds an integer attribute.
func Int(key string, v int) Attr { return Attr{Key: key, Val: strconv.Itoa(v)} }

// Int64 builds a 64-bit integer attribute.
func Int64(key string, v int64) Attr { return Attr{Key: key, Val: strconv.FormatInt(v, 10)} }

// Duration builds a duration attribute.
func Duration(key string, d time.Duration) Attr { return Attr{Key: key, Val: d.String()} }

// SpanRecord is one finished (or, during live export, still-running) span
// as the exporters and tests see it. Start is the offset from the
// tracer's epoch; Dur is zero while the span is running.
//
// ID/Parent/Track are process-local (compact, allocation-order) handles;
// TraceID/SpanID/ParentSpan are the globally-unique identities that
// survive shipment to another process. Proc is empty for locally-recorded
// spans and names the originating process on spans merged in via Adopt.
type SpanRecord struct {
	Name       string
	ID         uint64
	Parent     uint64 // 0 for root spans
	Track      uint64 // rendering row; children inherit it, Fork opens a new one
	TraceID    TraceID
	SpanID     SpanID
	ParentSpan SpanID // zero for trace roots; may name a span in another process
	Proc       string // originating process for adopted spans; "" = this process
	Start      time.Duration
	Dur        time.Duration
	Attrs      []Attr
	// Links are the contexts of causally-related spans that are not this
	// span's ancestors (Span.Link): the producer half of a channel
	// handoff, the remote peer of an in-process transport. Exporters
	// render them as flow arrows. New field; gob decodes older records
	// without it to an empty slice, so WireTrace stays wire-compatible.
	Links []Context
}

// Tracer collects spans. A nil *Tracer is the no-op tracer: Begin returns
// a nil *Span and the whole span API degenerates to nil checks.
type Tracer struct {
	epoch   time.Time // span-timestamp origin; immutable after construction
	seed    uint64    // ID-derivation seed; immutable after construction
	ids     atomic.Uint64
	tracks  atomic.Uint64
	sampleP atomic.Uint64 // math.Float64bits of the sampling probability

	mu      sync.Mutex
	done    []SpanRecord           // guarded by mu; bounded by maxDone
	maxDone int                    // guarded by mu; cap on done, 0 = unlimited
	live    map[uint64]*Span       // guarded by mu
	traces  map[uint64]*traceState // guarded by mu; unsampled in-flight traces
}

// DefaultSpanCap bounds a new tracer's finished-span buffer: once it is
// full, the oldest records are evicted as new ones arrive. At ~200 bytes a
// record that caps the buffer's resident cost at a few MB, so an always-on
// daemon tracer cannot grow without bound no matter how long it runs or
// how many failed traces peers send it. SetSpanCap adjusts or lifts it.
const DefaultSpanCap = 32768

// tracerSeeds differentiates tracers created in the same nanosecond.
var tracerSeeds atomic.Uint64

// New returns an enabled tracer whose span timestamps are relative to now
// and whose IDs are drawn from a time-derived seed.
func New() *Tracer {
	return NewSeeded(mix64(uint64(time.Now().UnixNano())) ^ mix64(tracerSeeds.Add(1)))
}

// NewSeeded returns an enabled tracer whose TraceIDs and SpanIDs are a
// pure function of seed and span order, so tests get reproducible IDs.
func NewSeeded(seed uint64) *Tracer {
	t := &Tracer{
		epoch:   time.Now(),
		seed:    seed,
		maxDone: DefaultSpanCap,
		live:    make(map[uint64]*Span),
		traces:  make(map[uint64]*traceState),
	}
	t.sampleP.Store(math.Float64bits(1))
	return t
}

// SetSpanCap bounds the finished-span buffer at n records, evicting the
// oldest when full; n <= 0 removes the bound (useful in tests that want
// every span). Safe on a nil tracer.
func (t *Tracer) SetSpanCap(n int) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.maxDone = n
	t.trimDoneLocked()
	t.mu.Unlock()
}

// appendDoneLocked files finished records and enforces the span cap.
// t.mu must be held.
func (t *Tracer) appendDoneLocked(recs ...SpanRecord) {
	t.done = append(t.done, recs...)
	t.trimDoneLocked()
}

// trimDoneLocked evicts the oldest records beyond the cap, reusing the
// backing array so a long-lived tracer does not keep reallocating.
// t.mu must be held.
func (t *Tracer) trimDoneLocked() {
	if t.maxDone > 0 && len(t.done) > t.maxDone {
		t.done = append(t.done[:0], t.done[len(t.done)-t.maxDone:]...)
	}
}

// Begin starts a root span on a fresh track, rooting a new trace with a
// fresh TraceID and applying the tracer's sampling policy.
func (t *Tracer) Begin(name string, attrs ...Attr) *Span {
	if t == nil {
		return nil
	}
	return t.beginRoot(name, Context{}, attrs)
}

// BeginRemote starts a root-level span that continues a trace begun in
// another process: the span adopts ctx's TraceID and sampling decision and
// parents under ctx's SpanID, so a migration's target-host spans nest
// under the client's migration span in the merged trace. A zero ctx (the
// untraced request) degrades to Begin.
func (t *Tracer) BeginRemote(name string, ctx Context, attrs ...Attr) *Span {
	if t == nil {
		return nil
	}
	return t.beginRoot(name, ctx, attrs)
}

func (t *Tracer) beginRoot(name string, ctx Context, attrs []Attr) *Span {
	id := t.ids.Add(1)
	s := &Span{
		tr:         t,
		name:       name,
		id:         id,
		root:       id,
		track:      t.tracks.Add(1),
		start:      time.Now(),
		spanID:     t.newSpanID(id),
		parentSpan: ctx.SpanID,
		attrs:      append([]Attr(nil), attrs...),
	}
	if ctx.TraceID.IsZero() {
		s.traceID = t.newTraceID(id)
		s.sampled = t.sampleTrace(s.traceID)
	} else {
		s.traceID = ctx.TraceID
		s.sampled = ctx.Sampled
	}
	t.mu.Lock()
	t.live[s.id] = s
	if !s.sampled {
		t.trackUnsampledLocked(s.root)
	}
	t.mu.Unlock()
	return s
}

// newChild starts a sub-span of parent on the given track, inheriting the
// parent's trace identity and sampling decision.
func (t *Tracer) newChild(parent *Span, name string, track uint64, attrs []Attr) *Span {
	id := t.ids.Add(1)
	s := &Span{
		tr:         t,
		name:       name,
		id:         id,
		parent:     parent.id,
		root:       parent.root,
		track:      track,
		start:      time.Now(),
		traceID:    parent.traceID,
		spanID:     t.newSpanID(id),
		parentSpan: parent.spanID,
		sampled:    parent.sampled,
		attrs:      append([]Attr(nil), attrs...),
	}
	t.mu.Lock()
	t.live[s.id] = s
	if !s.sampled {
		t.trackUnsampledLocked(s.root)
	}
	t.mu.Unlock()
	return s
}

// record files a finished span. Called by Span.End without Span.mu held,
// so the only lock nesting in the package is none at all.
func (t *Tracer) record(s *Span, rec SpanRecord) {
	t.mu.Lock()
	delete(t.live, rec.ID)
	if s.sampled {
		t.appendDoneLocked(rec)
	} else {
		t.recordUnsampledLocked(s.root, rec)
	}
	t.mu.Unlock()
}

// Completed returns a copy of every finished span, in End order.
func (t *Tracer) Completed() []SpanRecord {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]SpanRecord(nil), t.done...)
}

// ByName returns the finished spans with the given name, in End order.
func (t *Tracer) ByName(name string) []SpanRecord {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	var out []SpanRecord
	for _, r := range t.done {
		if r.Name == name {
			out = append(out, r)
		}
	}
	return out
}

// ActiveCount returns how many spans have begun but not ended — useful for
// leak checks in tests and for the /debug/trace status line. Unsampled
// spans count too: a leak is a leak regardless of the sampling decision.
func (t *Tracer) ActiveCount() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.live)
}

// snapshot copies the export state without holding any span lock. Live
// spans of unsampled traces are withheld: their fate is undecided, and
// exporting them would leak spans the sampler is about to drop.
func (t *Tracer) snapshot() (done []SpanRecord, live []*Span) {
	t.mu.Lock()
	defer t.mu.Unlock()
	done = append([]SpanRecord(nil), t.done...)
	live = make([]*Span, 0, len(t.live))
	for _, s := range t.live {
		if s.sampled {
			live = append(live, s)
		}
	}
	return done, live
}

// Span is one timed operation. Spans nest via Child (same rendering track)
// and Fork (new track, for work that overlaps the parent on another
// goroutine). All methods are safe on a nil receiver and End is
// idempotent, so error paths can End a span a second time harmlessly.
type Span struct {
	tr         *Tracer
	name       string
	id         uint64
	parent     uint64
	root       uint64 // local id of this trace's root span
	track      uint64
	start      time.Time
	traceID    TraceID
	spanID     SpanID
	parentSpan SpanID
	sampled    bool

	mu    sync.Mutex
	attrs []Attr        // guarded by mu
	links []Context     // guarded by mu
	ended bool          // guarded by mu
	dur   time.Duration // guarded by mu
}

// Context returns the span's portable trace context, for Inject into a
// cross-process request. A nil span returns the zero (untraced) Context.
func (s *Span) Context() Context {
	if s == nil {
		return Context{}
	}
	return Context{TraceID: s.traceID, SpanID: s.spanID, Sampled: s.sampled}
}

// Child starts a sub-span on the parent's track: sequential phases of the
// same logical activity.
func (s *Span) Child(name string, attrs ...Attr) *Span {
	if s == nil {
		return nil
	}
	return s.tr.newChild(s, name, s.track, attrs)
}

// Fork starts a sub-span on a fresh track: concurrent work (a goroutine)
// whose interval overlaps the parent, so the trace viewer renders it on
// its own row instead of mis-nesting it.
func (s *Span) Fork(name string, attrs ...Attr) *Span {
	if s == nil {
		return nil
	}
	return s.tr.newChild(s, name, s.tr.tracks.Add(1), attrs)
}

// Link ties the span to another span that is causally related but not an
// ancestor — the two halves of a channel handoff, the peer endpoint of an
// in-process transport — so the trace viewer can draw a flow arrow
// between rows that plain parent/child nesting cannot connect. Linking
// the zero (untraced) context, or linking on a nil span, is a no-op.
func (s *Span) Link(ctx Context) {
	if s == nil || ctx.SpanID.IsZero() {
		return
	}
	s.mu.Lock()
	s.links = append(s.links, ctx)
	s.mu.Unlock()
}

// Annotate appends attributes to a running span.
func (s *Span) Annotate(attrs ...Attr) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.attrs = append(s.attrs, attrs...)
	s.mu.Unlock()
}

// End finishes the span and files it with the tracer. Idempotent.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	s.dur = time.Since(s.start)
	rec := s.recordLocked()
	s.mu.Unlock()
	s.tr.record(s, rec)
}

// Fail annotates the span with err (when non-nil) and ends it. Fault
// paths use it so aborted phases stay visible in the trace; a non-nil err
// additionally marks the whole trace as failed, which exempts it from
// sampling (failed traces are always kept).
func (s *Span) Fail(err error) {
	if s == nil {
		return
	}
	if err != nil {
		s.Annotate(Attr{Key: "error", Val: err.Error()})
		s.tr.markTraceFailed(s)
	}
	s.End()
}

// Duration returns the measured duration: zero until End.
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dur
}

// recordLocked builds the span's export record; s.mu must be held.
func (s *Span) recordLocked() SpanRecord {
	return SpanRecord{
		Name:       s.name,
		ID:         s.id,
		Parent:     s.parent,
		Track:      s.track,
		TraceID:    s.traceID,
		SpanID:     s.spanID,
		ParentSpan: s.parentSpan,
		Start:      s.start.Sub(s.tr.epoch),
		Dur:        s.dur,
		Attrs:      append([]Attr(nil), s.attrs...),
		Links:      append([]Context(nil), s.links...),
	}
}

package telemetry

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestSpanTreeShape(t *testing.T) {
	tr := New()
	root := tr.Begin("root", String("vm", "tenant"))
	child := root.Child("child")
	fork := root.Fork("fork", Int("round", 3))
	time.Sleep(time.Millisecond)
	fork.End()
	child.End()
	root.Annotate(Duration("total", 5*time.Millisecond))
	root.End()

	recs := tr.Completed()
	if len(recs) != 3 {
		t.Fatalf("completed %d spans, want 3", len(recs))
	}
	byName := map[string]SpanRecord{}
	for _, r := range recs {
		byName[r.Name] = r
	}
	r, c, f := byName["root"], byName["child"], byName["fork"]
	if c.Parent != r.ID || f.Parent != r.ID {
		t.Errorf("parent links wrong: root=%d child.parent=%d fork.parent=%d", r.ID, c.Parent, f.Parent)
	}
	if c.Track != r.Track {
		t.Errorf("Child should inherit the parent track: %d vs %d", c.Track, r.Track)
	}
	if f.Track == r.Track {
		t.Errorf("Fork should open a new track, got the parent's %d", f.Track)
	}
	if r.Dur <= 0 || f.Dur <= 0 {
		t.Errorf("durations not measured: root=%v fork=%v", r.Dur, f.Dur)
	}
	if got := len(r.Attrs); got != 2 {
		t.Errorf("root has %d attrs, want begin attr + annotation", got)
	}
	if tr.ActiveCount() != 0 {
		t.Errorf("%d spans still active after ending all", tr.ActiveCount())
	}
}

func TestEndIsIdempotent(t *testing.T) {
	tr := New()
	sp := tr.Begin("once")
	sp.End()
	d := sp.Duration()
	sp.Fail(fmt.Errorf("late error must not re-file the span"))
	sp.End()
	if got := len(tr.Completed()); got != 1 {
		t.Fatalf("span filed %d times, want 1", got)
	}
	if sp.Duration() != d {
		t.Errorf("second End changed the duration")
	}
}

func TestFailAnnotatesError(t *testing.T) {
	tr := New()
	sp := tr.Begin("doomed")
	sp.Fail(fmt.Errorf("quiesce timeout"))
	recs := tr.ByName("doomed")
	if len(recs) != 1 {
		t.Fatalf("want 1 record, got %d", len(recs))
	}
	found := false
	for _, a := range recs[0].Attrs {
		if a.Key == "error" && a.Val == "quiesce timeout" {
			found = true
		}
	}
	if !found {
		t.Errorf("Fail did not annotate the error: %v", recs[0].Attrs)
	}
}

func TestNilTracerIsNoop(t *testing.T) {
	var tr *Tracer
	sp := tr.Begin("x", String("k", "v"))
	if sp != nil {
		t.Fatal("nil tracer must hand out nil spans")
	}
	sp.Annotate(Int("n", 1))
	sp.Fail(fmt.Errorf("ignored"))
	sp.End()
	if sp.Child("c") != nil || sp.Fork("f") != nil {
		t.Error("nil span must produce nil children")
	}
	if sp.Duration() != 0 || tr.ActiveCount() != 0 || tr.Completed() != nil || tr.ByName("x") != nil {
		t.Error("nil accessors must return zero values")
	}
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatalf("nil tracer export: %v", err)
	}
	var out struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("nil tracer export is not valid JSON: %v", err)
	}
	if len(out.TraceEvents) != 0 {
		t.Errorf("nil tracer exported %d events", len(out.TraceEvents))
	}
}

func TestNilMetricsIsNoop(t *testing.T) {
	var m *Metrics
	c := m.Counter("c")
	g := m.Gauge("g")
	h := m.Histogram("h", []int64{1, 2})
	if c != nil || g != nil || h != nil {
		t.Fatal("nil registry must hand out nil instruments")
	}
	c.Inc()
	c.Add(5)
	g.Set(7)
	g.Add(-2)
	h.Observe(1)
	if err := h.Merge(NewHistogram([]int64{1, 2})); err != nil {
		t.Errorf("nil merge: %v", err)
	}
	if c.Value() != 0 || g.Value() != 0 || h.Snapshot().Count != 0 {
		t.Error("nil instruments must read as zero")
	}
	var buf bytes.Buffer
	if err := m.WriteText(&buf); err != nil {
		t.Fatalf("nil WriteText: %v", err)
	}
	if !strings.Contains(buf.String(), "disabled") {
		t.Errorf("nil WriteText output: %q", buf.String())
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram([]int64{10, 100, 1000})
	for _, v := range []int64{5, 10, 11, 100, 500, 1001, 1 << 40} {
		h.Observe(v)
	}
	s := h.Snapshot()
	want := []int64{2, 2, 1, 2} // <=10, <=100, <=1000, overflow
	for i, w := range want {
		if s.Counts[i] != w {
			t.Errorf("bucket %d = %d, want %d", i, s.Counts[i], w)
		}
	}
	if s.Count != 7 {
		t.Errorf("count %d, want 7", s.Count)
	}
}

func TestHistogramMerge(t *testing.T) {
	a := NewHistogram([]int64{10, 100})
	b := NewHistogram([]int64{10, 100})
	a.Observe(5)
	b.Observe(50)
	b.Observe(5000)
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	s := a.Snapshot()
	if s.Count != 3 || s.Counts[0] != 1 || s.Counts[1] != 1 || s.Counts[2] != 1 {
		t.Errorf("merged snapshot wrong: %+v", s)
	}
	if err := a.Merge(NewHistogram([]int64{10})); err == nil {
		t.Error("merge with different bucket count must fail")
	}
	if err := a.Merge(NewHistogram([]int64{10, 200})); err == nil {
		t.Error("merge with different bounds must fail")
	}
}

func TestRegistryReturnsSameInstrument(t *testing.T) {
	m := NewMetrics()
	if m.Counter("x") != m.Counter("x") {
		t.Error("counter identity not stable")
	}
	if m.Gauge("x") != m.Gauge("x") {
		t.Error("gauge identity not stable")
	}
	if m.Histogram("x", []int64{1}) != m.Histogram("x", []int64{9}) {
		t.Error("histogram identity not stable")
	}
}

func TestWriteTextDeterministic(t *testing.T) {
	m := NewMetrics()
	m.Counter("b.count").Add(2)
	m.Counter("a.count").Inc()
	m.Gauge("q.depth").Set(4)
	m.Histogram("lat.ns", []int64{100, 1000}).Observe(50)
	var one, two bytes.Buffer
	if err := m.WriteText(&one); err != nil {
		t.Fatal(err)
	}
	if err := m.WriteText(&two); err != nil {
		t.Fatal(err)
	}
	if one.String() != two.String() {
		t.Error("text dump is not deterministic")
	}
	for _, want := range []string{
		"counter a.count 1",
		"counter b.count 2",
		"gauge q.depth 4",
		"histogram lat.ns count=1 sum=50",
		"  le 100: 1",
		"  le +inf: 0",
	} {
		if !strings.Contains(one.String(), want) {
			t.Errorf("dump missing %q:\n%s", want, one.String())
		}
	}
}

// TestConcurrentSpans exercises the tracer the way the pipelined migration
// engine does — many goroutines opening children and forks off a shared
// root while exporters run — and is meaningful under -race.
func TestConcurrentSpans(t *testing.T) {
	tr := New()
	root := tr.Begin("root")
	const workers, each = 8, 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				sp := root.Fork("work", Int("worker", w))
				sp.Annotate(Int("i", i))
				sp.Child("inner").End()
				sp.End()
			}
		}(w)
	}
	// Exporters race with the workers.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			var buf bytes.Buffer
			if err := tr.WriteChromeTrace(&buf); err != nil {
				t.Errorf("export during load: %v", err)
				return
			}
			_ = tr.Completed()
			_ = tr.ActiveCount()
		}
	}()
	wg.Wait()
	root.End()
	if got, want := len(tr.Completed()), workers*each*2+1; got != want {
		t.Errorf("completed %d spans, want %d", got, want)
	}
}

// TestConcurrentMetrics hammers all three instrument kinds plus merges
// from many goroutines; meaningful under -race.
func TestConcurrentMetrics(t *testing.T) {
	m := NewMetrics()
	total := NewHistogram([]int64{10, 100, 1000})
	const workers, each = 8, 200
	var wg sync.WaitGroup
	var mergeMu sync.Mutex
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			local := NewHistogram([]int64{10, 100, 1000})
			for i := 0; i < each; i++ {
				m.Counter("ops").Inc()
				m.Gauge("depth").Add(1)
				m.Gauge("depth").Add(-1)
				m.Histogram("shared", []int64{10, 100}).Observe(int64(i))
				local.Observe(int64(i))
			}
			mergeMu.Lock()
			defer mergeMu.Unlock()
			if err := total.Merge(local); err != nil {
				t.Errorf("merge: %v", err)
			}
		}(w)
	}
	wg.Wait()
	if got := m.Counter("ops").Value(); got != workers*each {
		t.Errorf("ops %d, want %d", got, workers*each)
	}
	if got := m.Gauge("depth").Value(); got != 0 {
		t.Errorf("depth %d, want 0", got)
	}
	if got := total.Snapshot().Count; got != workers*each {
		t.Errorf("merged count %d, want %d", got, workers*each)
	}
}

func TestChromeTraceExport(t *testing.T) {
	tr := New()
	root := tr.Begin("vmm.livemigrate")
	dump := root.Fork("vmm.dump")
	time.Sleep(time.Millisecond)
	dump.End()
	running := root.Child("vmm.precopy.round", Int("round", 1))
	_ = running // stays live: must export as a "B" event

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var out struct {
		TraceEvents []struct {
			Name string            `json:"name"`
			Ph   string            `json:"ph"`
			Ts   float64           `json:"ts"`
			Dur  float64           `json:"dur"`
			TID  uint64            `json:"tid"`
			Args map[string]string `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("export is not valid JSON: %v\n%s", err, buf.String())
	}
	if out.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit %q", out.DisplayTimeUnit)
	}
	phases := map[string]string{}
	for _, ev := range out.TraceEvents {
		if ev.Ph == "X" || ev.Ph == "B" {
			phases[ev.Name] = ev.Ph
		}
	}
	if phases["vmm.dump"] != "X" {
		t.Errorf("finished span exported as %q, want X", phases["vmm.dump"])
	}
	if phases["vmm.precopy.round"] != "B" {
		t.Errorf("running span exported as %q, want B", phases["vmm.precopy.round"])
	}
	var metaNames []string
	for _, ev := range out.TraceEvents {
		if ev.Ph == "M" {
			metaNames = append(metaNames, ev.Args["name"])
		}
	}
	joined := strings.Join(metaNames, ",")
	if !strings.Contains(joined, "sgxmig") || !strings.Contains(joined, "vmm.livemigrate") {
		t.Errorf("metadata names missing: %v", metaNames)
	}
	running.End()
}

func TestHTTPHandler(t *testing.T) {
	tr := New()
	m := NewMetrics()
	m.Counter("hits").Inc()
	tr.Begin("req").End()
	j := NewJournal(8)
	j.Append(EventQuiesce, "counter-1", Context{})
	h := Handler(tr, m, j)

	get := func(path string) *httptest.ResponseRecorder {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
		return rec
	}
	if rec := get("/metrics"); rec.Code != 200 || !strings.Contains(rec.Body.String(), "counter hits 1") {
		t.Errorf("/metrics: code %d body %q", rec.Code, rec.Body.String())
	}
	rec := get("/debug/trace")
	if rec.Code != 200 {
		t.Fatalf("/debug/trace code %d", rec.Code)
	}
	var out map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Errorf("/debug/trace not JSON: %v", err)
	}
	if rec := get("/"); rec.Code != 200 || !strings.Contains(rec.Body.String(), "telemetry") {
		t.Errorf("index: code %d body %q", rec.Code, rec.Body.String())
	}
	if rec := get("/nope"); rec.Code != 404 {
		t.Errorf("unknown path code %d, want 404", rec.Code)
	}

	if rec := get("/metrics/prom"); rec.Code != 200 || !strings.Contains(rec.Body.String(), "hits_total 1") {
		t.Errorf("/metrics/prom: code %d body %q", rec.Code, rec.Body.String())
	}
	if rec := get("/events"); rec.Code != 200 || !strings.Contains(rec.Body.String(), `"kind":"quiesce"`) {
		t.Errorf("/events: code %d body %q", rec.Code, rec.Body.String())
	}
	if rec := get("/events?since=zap"); rec.Code != 400 {
		t.Errorf("/events with bad cursor: code %d, want 400", rec.Code)
	}

	// All sinks nil: endpoints still answer.
	dark := Handler(nil, nil, nil)
	rec = httptest.NewRecorder()
	dark.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		t.Errorf("dark /metrics code %d", rec.Code)
	}
}

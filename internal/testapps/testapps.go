// Package testapps provides small enclave applications used across the test
// suites, examples and benchmarks: a resumable counter, a two-account bank
// (the paper's Fig. 3 consistency example), and an echo/ocall exerciser.
package testapps

import (
	"repro/internal/enclave"
)

// Counter selectors.
const (
	CounterRun = 0 // R1 = iterations; counts one per step; returns count in R0
	CounterGet = 1 // returns current count in R0
	CounterAdd = 2 // R1 = delta; adds once; returns new count
)

// CounterApp returns an app whose state is a single counter in heap memory,
// incremented one step at a time — the canonical interruptible/migratable
// computation.
func CounterApp(workers int) *enclave.App {
	return &enclave.App{
		Name:        "counter",
		CodeVersion: "v1",
		Workers:     workers,
		HeapPages:   1,
		ECalls: []enclave.ECallFn{
			counterRun,
			counterGet,
			counterAdd,
		},
	}
}

func counterRun(c *enclave.Call) enclave.AppStatus {
	// Registers: R1 = remaining iterations (counted down in the register
	// file so it survives AEX/migration); heap[0] = the counter.
	if c.PC == 0 {
		c.PC = 1 // argument captured; nothing else to initialise
	}
	if c.Regs[1] == 0 {
		v, err := c.Load64(c.HeapBase())
		if err != nil {
			return enclave.AppAbort
		}
		c.Regs[0] = v
		return enclave.AppDone
	}
	v, err := c.Load64(c.HeapBase())
	if err != nil {
		return enclave.AppAbort
	}
	if err := c.Store64(c.HeapBase(), v+1); err != nil {
		return enclave.AppAbort
	}
	c.Regs[1]--
	return enclave.AppRunning
}

func counterGet(c *enclave.Call) enclave.AppStatus {
	v, err := c.Load64(c.HeapBase())
	if err != nil {
		return enclave.AppAbort
	}
	c.Regs[0] = v
	return enclave.AppDone
}

func counterAdd(c *enclave.Call) enclave.AppStatus {
	v, err := c.Load64(c.HeapBase())
	if err != nil {
		return enclave.AppAbort
	}
	v += c.Regs[1]
	if err := c.Store64(c.HeapBase(), v); err != nil {
		return enclave.AppAbort
	}
	c.Regs[0] = v
	return enclave.AppDone
}

// Bank selectors (the Fig. 3 money-transfer example: the invariant is that
// account A + account B is constant).
const (
	BankInit     = 0 // R1 = initial balance for each account
	BankTransfer = 1 // R1 = amount, R2 = rounds; moves A->B one unit at a time
	BankSum      = 2 // returns A+B in R0, A in R1, B in R2
)

// BankApp returns the two-account bank used to demonstrate the data
// consistency attack and its defence. The two accounts deliberately live on
// pages far apart in the enclave so that a naive (non-quiescent) checkpoint
// walk has a wide window between reading A and reading B — the Fig. 3
// scenario.
func BankApp(workers int) *enclave.App {
	return &enclave.App{
		Name:        "bank",
		CodeVersion: "v1",
		Workers:     workers,
		HeapPages:   32,
		ECalls: []enclave.ECallFn{
			bankInit,
			bankTransfer,
			bankSum,
		},
	}
}

func bankAddrA(c *enclave.Call) uint64 { return c.HeapBase() }
func bankAddrB(c *enclave.Call) uint64 { return c.HeapBase() + c.HeapSize() - 4096 }

func bankInit(c *enclave.Call) enclave.AppStatus {
	if err := c.Store64(bankAddrA(c), c.Regs[1]); err != nil {
		return enclave.AppAbort
	}
	if err := c.Store64(bankAddrB(c), c.Regs[1]); err != nil {
		return enclave.AppAbort
	}
	return enclave.AppDone
}

// bankTransfer deliberately makes each unit transfer take two separate
// steps — debit A, then credit B — so that an ill-timed (naive) checkpoint
// between the steps captures an inconsistent state, exactly the paper's
// Fig. 3 scenario.
func bankTransfer(c *enclave.Call) enclave.AppStatus {
	const (
		phaseDebit  = 0
		phaseCredit = 1
	)
	if c.Regs[2] == 0 {
		return enclave.AppDone
	}
	switch c.PC {
	case phaseDebit:
		a, err := c.Load64(bankAddrA(c))
		if err != nil {
			return enclave.AppAbort
		}
		if err := c.Store64(bankAddrA(c), a-c.Regs[1]); err != nil {
			return enclave.AppAbort
		}
		c.PC = phaseCredit
	case phaseCredit:
		b, err := c.Load64(bankAddrB(c))
		if err != nil {
			return enclave.AppAbort
		}
		if err := c.Store64(bankAddrB(c), b+c.Regs[1]); err != nil {
			return enclave.AppAbort
		}
		c.PC = phaseDebit
		c.Regs[2]--
	}
	return enclave.AppRunning
}

func bankSum(c *enclave.Call) enclave.AppStatus {
	a, err := c.Load64(bankAddrA(c))
	if err != nil {
		return enclave.AppAbort
	}
	b, err := c.Load64(bankAddrB(c))
	if err != nil {
		return enclave.AppAbort
	}
	c.Regs[0] = a + b
	c.Regs[1] = a
	c.Regs[2] = b
	return enclave.AppDone
}

// Echo selectors.
const (
	EchoOCall = 0 // performs one ocall with R1 and returns the result
)

// EchoApp exercises the ocall round trip: the ecall asks the untrusted host
// to transform a value and returns the answer.
func EchoApp(handler enclave.OCallFn) *enclave.App {
	return &enclave.App{
		Name:        "echo",
		CodeVersion: "v1",
		Workers:     1,
		HeapPages:   1,
		OCall:       handler,
		ECalls:      []enclave.ECallFn{echoOCall},
	}
}

func echoOCall(c *enclave.Call) enclave.AppStatus {
	const (
		phaseCall = 0
		phaseDone = 1
	)
	switch c.PC {
	case phaseCall:
		c.OCallID = 7
		c.OCallArg = c.Regs[1]
		c.OCallLen = 0
		c.PC = phaseDone
		return enclave.AppOCall
	default:
		// Back from the ocall: R0 = result, R1 = error flag.
		if c.Regs[1] != 0 {
			return enclave.AppAbort
		}
		return enclave.AppDone
	}
}

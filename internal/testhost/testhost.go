// Package testhost spins up in-process sgxhost daemons on ephemeral
// localhost listeners, so tests and benchmarks can drive real TCP
// migrations across N daemons without forking processes or copy-pasting
// the harness. It deliberately does not depend on package testing:
// internal/bench uses it for the drain ablation too.
package testhost

import (
	"net"
	"strconv"

	"repro/internal/core"
	"repro/internal/hostd"
	"repro/internal/telemetry"
)

// Options configures a harness host. The zero value is usable.
type Options struct {
	// Secret is the shared deployment secret (default "test-secret").
	// Every host in one fleet must use the same secret.
	Secret string
	// EPCFrames sizes the simulated machine's EPC (default 4096).
	EPCFrames int
	// Sample is the tracer's head-sampling fraction (failed traces are
	// always kept). Fleets under fault sweeps run at 0 to keep span
	// traffic out of the hot path.
	Sample float64
	// MigrationHook, if non-nil, wraps the source-side transport of every
	// outbound migration (see hostd.Server.SetMigrationTransportHook).
	// Installing it here, before the serve loop starts, keeps the field
	// write race-free; dynamic per-migration behaviour belongs inside the
	// hook, keyed by the migrating session's id.
	MigrationHook func(id string, ts core.Transport) core.Transport
	// JournalCap overrides the protocol-event journal ring size (default
	// telemetry.DefaultJournalCap). Fault sweeps that replay many
	// migrations between scrapes raise it so early records survive
	// eviction until the fleet federates them.
	JournalCap int
}

func (o Options) secret() string {
	if o.Secret == "" {
		return "test-secret"
	}
	return o.Secret
}

func (o Options) epc() int {
	if o.EPCFrames == 0 {
		return 4096
	}
	return o.EPCFrames
}

// Host is one in-process sgxhost on an ephemeral localhost port.
type Host struct {
	S    *hostd.Server
	Addr string
	ln   net.Listener
}

// Start builds a daemon, gives it a deterministic seeded tracer, binds an
// ephemeral listener, and serves in a background goroutine until Close.
// Seeds must be distinct across the hosts of one test so their span ID
// streams stay disjoint when traces merge.
func Start(name string, seed uint64, opt Options) (*Host, error) {
	s, err := hostd.New(name, opt.secret(), opt.epc())
	if err != nil {
		return nil, err
	}
	tr := telemetry.NewSeeded(seed)
	tr.SetSampling(opt.Sample)
	s.SetTelemetry(tr, telemetry.NewMetrics())
	if opt.JournalCap > 0 {
		s.SetJournal(telemetry.NewJournal(opt.JournalCap))
	}
	if opt.MigrationHook != nil {
		s.SetMigrationTransportHook(opt.MigrationHook)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	go s.ServeLoop(ln)
	return &Host{S: s, Addr: ln.Addr().String(), ln: ln}, nil
}

// Close stops accepting connections. In-flight connections finish on
// their own; the serve loop goroutine exits with the listener.
func (h *Host) Close() { _ = h.ln.Close() }

// StartN starts n hosts named h0..h(n-1) with tracer seeds 1..n.
// On error the already-started hosts are closed.
func StartN(n int, opt Options) ([]*Host, error) {
	hosts := make([]*Host, 0, n)
	for i := 0; i < n; i++ {
		h, err := Start(hostName(i), uint64(i+1), opt)
		if err != nil {
			CloseAll(hosts)
			return nil, err
		}
		hosts = append(hosts, h)
	}
	return hosts, nil
}

// CloseAll closes every host in hs (nil entries tolerated).
func CloseAll(hs []*Host) {
	for _, h := range hs {
		if h != nil {
			h.Close()
		}
	}
}

// Addrs returns the listen addresses of hs in order.
func Addrs(hs []*Host) []string {
	addrs := make([]string, len(hs))
	for i, h := range hs {
		addrs[i] = h.Addr
	}
	return addrs
}

func hostName(i int) string {
	return "h" + strconv.Itoa(i)
}

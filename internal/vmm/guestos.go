package vmm

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/enclave"
	"repro/internal/epcman"
	"repro/internal/sgx"
)

// WorkloadFunc drives one enclave worker thread from the untrusted guest
// process; it must loop issuing ecalls until stop is closed, tolerating
// ErrDestroyed/ErrWorkerBusy (which occur around migrations).
type WorkloadFunc func(rt *enclave.Runtime, worker int, stop <-chan struct{})

// Process is a guest process hosting one enclave.
type Process struct {
	Name  string
	Image string
	RT    *enclave.Runtime

	workload   WorkloadFunc
	sharedBase uint64
	sharedSize uint64

	mu      sync.Mutex
	stop    chan struct{}
	wg      sync.WaitGroup
	running bool
}

// PlainProcess is a guest process without an enclave: it just dirties guest
// memory, standing in for the ordinary applications in the VM.
type PlainProcess struct {
	Name string

	mem       *GuestMemory
	base      uint64
	pages     int
	writeRate time.Duration

	stop chan struct{}
	wg   sync.WaitGroup
}

// OS is the guest operating system: it owns the in-guest SGX driver (an
// epcman.Manager over hypervisor-granted frames), the process table, and
// the migration fan-out of Fig. 8 steps 2-6.
type OS struct {
	Name string

	mach  *sgx.Machine
	host  *enclave.Host
	mem   *GuestMemory
	reg   *core.Registry
	vcpus chan struct{}

	mu        sync.Mutex
	procs     []*Process      // guarded by mu
	plain     []*PlainProcess // guarded by mu
	allocOff  uint64          // guarded by mu
	migrating bool            // guarded by mu
}

// NewOS boots a guest OS.
//   - mach:   the physical machine (reached through hypercalls)
//   - source: the hypervisor's EPC grant hypercall
//   - disp:   the machine fault dispatcher
//   - mem:    guest physical memory
//   - reg:    the deployment registry visible inside this guest
func NewOS(name string, mach *sgx.Machine, source epcman.FrameSource, disp *epcman.Dispatcher, mem *GuestMemory, reg *core.Registry, vcpus int) *OS {
	mgr := epcman.New(mach, nil)
	mgr.SetFrameSource(source)
	if vcpus <= 0 {
		vcpus = 4
	}
	return &OS{
		Name:  name,
		mach:  mach,
		host:  &enclave.Host{Mgr: mgr, Disp: disp},
		mem:   mem,
		reg:   reg,
		vcpus: make(chan struct{}, vcpus),
	}
}

// Host returns the guest's enclave-hosting platform.
func (o *OS) Host() *enclave.Host { return o.host }

// Memory returns guest physical memory.
func (o *OS) Memory() *GuestMemory { return o.mem }

// Registry returns the in-guest deployment registry.
func (o *OS) Registry() *core.Registry { return o.reg }

// VCPUs returns the virtual CPU count.
func (o *OS) VCPUs() int { return cap(o.vcpus) }

// RunOnVCPU executes fn while holding a VCPU slot, modelling scheduler
// contention (the Fig. 9(c) knee past 4 enclaves × 3 threads on 4 VCPUs).
func (o *OS) RunOnVCPU(fn func()) {
	o.vcpus <- struct{}{}
	defer func() { <-o.vcpus }()
	fn()
}

// allocShared reserves a window of guest memory for a process's shared
// region.
func (o *OS) allocShared(size uint64) (uint64, error) {
	o.mu.Lock()
	defer o.mu.Unlock()
	// Reserve the low 1 MiB for "kernel" use, then bump-allocate.
	if o.allocOff == 0 {
		o.allocOff = 1 << 20
	}
	base := o.allocOff
	if base+size > uint64(o.mem.Bytes()) {
		return 0, fmt.Errorf("vmm: guest memory exhausted for shared regions")
	}
	o.allocOff = base + size
	return base, nil
}

// LaunchEnclaveProcess creates a process hosting image, provisions it with
// the owner if given, and starts its workload loops.
func (o *OS) LaunchEnclaveProcess(name, image string, owner *core.Owner, workload WorkloadFunc) (*Process, error) {
	dep, ok := o.reg.Lookup(image)
	if !ok {
		return nil, fmt.Errorf("vmm: image %q not deployed in guest %s", image, o.Name)
	}
	size := uint64(enclave.SharedSizeFor(appLayout(dep.App)))
	base, err := o.allocShared(size)
	if err != nil {
		return nil, err
	}
	region, err := o.mem.Region(base, size)
	if err != nil {
		return nil, err
	}
	rt, err := enclave.BuildSigned(o.host, dep.App, dep.Sig, enclave.WithShared(region))
	if err != nil {
		return nil, err
	}
	if owner != nil {
		if err := owner.Provision(rt); err != nil {
			_ = rt.Destroy()
			return nil, err
		}
	}
	p := &Process{
		Name:       name,
		Image:      image,
		RT:         rt,
		workload:   workload,
		sharedBase: base,
		sharedSize: size,
	}
	o.mu.Lock()
	o.procs = append(o.procs, p)
	o.mu.Unlock()
	p.start()
	return p, nil
}

func appLayout(app *enclave.App) enclave.Layout {
	nssa := app.NSSA
	if nssa == 0 {
		nssa = 3
	}
	return enclave.Layout{Threads: app.Workers + 1, NSSA: nssa, DataPages: app.DataPages, HeapPages: app.HeapPages}
}

func (p *Process) start() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.running || p.workload == nil {
		return
	}
	p.stop = make(chan struct{})
	p.running = true
	for w := 0; w < p.RT.App().Workers; w++ {
		p.wg.Add(1)
		go func(worker int) {
			defer p.wg.Done()
			p.workload(p.RT, worker, p.stop)
		}(w)
	}
}

// Stop halts the process's workload loops.
func (p *Process) Stop() {
	p.mu.Lock()
	if !p.running {
		p.mu.Unlock()
		return
	}
	close(p.stop)
	p.running = false
	p.mu.Unlock()
	p.wg.Wait()
}

// LaunchPlainProcess starts a non-enclave process that dirties `pages`
// guest pages starting at a private window, one write every writeRate.
func (o *OS) LaunchPlainProcess(name string, pages int, writeRate time.Duration) (*PlainProcess, error) {
	base, err := o.allocShared(uint64(pages) * PageSize)
	if err != nil {
		return nil, err
	}
	p := &PlainProcess{
		Name:      name,
		mem:       o.mem,
		base:      base,
		pages:     pages,
		writeRate: writeRate,
		stop:      make(chan struct{}),
	}
	o.mu.Lock()
	o.plain = append(o.plain, p)
	o.mu.Unlock()
	p.wg.Add(1)
	go p.run()
	return p, nil
}

func (p *PlainProcess) run() {
	defer p.wg.Done()
	rng := rand.New(rand.NewSource(int64(p.base)))
	buf := make([]byte, 64)
	ticker := time.NewTicker(p.writeRate)
	defer ticker.Stop()
	for {
		select {
		case <-p.stop:
			return
		case <-ticker.C:
			page := rng.Intn(p.pages)
			rng.Read(buf)
			_ = p.mem.Write(p.base+uint64(page)*PageSize, buf)
		}
	}
}

// Stop halts the plain process.
func (p *PlainProcess) Stop() {
	select {
	case <-p.stop:
	default:
		close(p.stop)
	}
	p.wg.Wait()
}

// Processes returns the enclave process table.
func (o *OS) Processes() []*Process {
	o.mu.Lock()
	defer o.mu.Unlock()
	out := make([]*Process, len(o.procs))
	copy(out, o.procs)
	return out
}

// StopAll pauses every process (the VM's stop-and-copy moment).
func (o *OS) StopAll() {
	for _, p := range o.Processes() {
		p.Stop()
	}
	o.StopPlain()
}

// StopPlain pauses only the non-enclave processes. During a live migration
// the enclave workers are parked inside their spin regions and only come
// back (or die with the source instance) once the per-enclave migration
// completes, so their host loops are stopped afterwards.
func (o *OS) StopPlain() {
	o.mu.Lock()
	plain := append([]*PlainProcess(nil), o.plain...)
	o.mu.Unlock()
	for _, p := range plain {
		p.Stop()
	}
}

// PrepareAllEnclaves implements Fig. 8 steps 2-6: the guest OS refuses new
// enclaves, signals every enclave process (SIGUSR1 analogue), and waits
// until every control thread reports its enclave ready. It returns the
// total dumping latency (the Fig. 9(d) metric) and the per-enclave
// checkpoint blobs.
func (o *OS) PrepareAllEnclaves(opts *core.Options) (map[string][]byte, time.Duration, error) {
	o.mu.Lock()
	if o.migrating {
		o.mu.Unlock()
		return nil, 0, errors.New("vmm: migration already in progress")
	}
	o.migrating = true
	procs := append([]*Process(nil), o.procs...)
	o.mu.Unlock()

	start := time.Now()
	blobs := make(map[string][]byte, len(procs))
	var (
		mu       sync.Mutex
		wg       sync.WaitGroup
		firstErr error
	)
	for _, p := range procs {
		wg.Add(1)
		go func(p *Process) {
			defer wg.Done()
			var blob []byte
			err := func() error {
				o.RunOnVCPU(func() {}) // scheduling slot for the signal
				if _, err := core.Prepare(p.RT, opts); err != nil {
					return err
				}
				var err error
				blob, _, err = core.Dump(p.RT, opts)
				return err
			}()
			mu.Lock()
			defer mu.Unlock()
			if err != nil && firstErr == nil {
				firstErr = fmt.Errorf("vmm: enclave %s: %w", p.Name, err)
			}
			blobs[p.Name] = blob
		}(p)
	}
	wg.Wait()
	if firstErr != nil {
		o.CancelMigration()
		return nil, 0, firstErr
	}
	return blobs, time.Since(start), nil
}

// CancelMigration resumes all enclaves after an aborted migration.
func (o *OS) CancelMigration() {
	for _, p := range o.Processes() {
		_ = core.Cancel(p.RT)
	}
	o.mu.Lock()
	o.migrating = false
	o.mu.Unlock()
}

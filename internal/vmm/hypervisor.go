package vmm

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/epcman"
	"repro/internal/sgx"
)

// Hypervisor errors.
var (
	ErrEPCExhausted = errors.New("vmm: physical EPC exhausted")
	ErrQuotaReached = errors.New("vmm: VM EPC quota reached")
)

// Hypervisor manages the machine's physical EPC and grants frames to guest
// VMs on demand (paper Sec. VI-A: "the hypervisor only maps part of this
// region to real EPC and leaves the remaining part unmapped... the
// hypervisor can use the on-demand paging strategy"). Each VM sees a virtual
// EPC quota that may collectively overcommit the physical EPC; when a VM
// exhausts its grant it must evict at guest level (Sec. VI-B).
type Hypervisor struct {
	m    *sgx.Machine
	disp *epcman.Dispatcher

	mu     sync.Mutex
	next   int                       // guarded by mu
	handed map[sgx.FrameIndex]string // guarded by mu
	quota  map[string]int            // guarded by mu
	used   map[string]int            // guarded by mu
}

// NewHypervisor boots the hypervisor on a machine, installing the
// machine-wide fault dispatcher.
func NewHypervisor(m *sgx.Machine) *Hypervisor {
	return &Hypervisor{
		m:      m,
		disp:   epcman.NewDispatcher(m),
		handed: make(map[sgx.FrameIndex]string),
		quota:  make(map[string]int),
		used:   make(map[string]int),
	}
}

// Machine returns the underlying machine.
func (h *Hypervisor) Machine() *sgx.Machine { return h.m }

// Dispatcher returns the fault dispatcher guest drivers register with.
func (h *Hypervisor) Dispatcher() *epcman.Dispatcher { return h.disp }

// GrantEPC registers a VM's virtual-EPC quota and returns the hypercall the
// guest SGX driver uses to demand-map frames.
func (h *Hypervisor) GrantEPC(vm string, quota int) epcman.FrameSource {
	h.mu.Lock()
	h.quota[vm] = quota
	h.mu.Unlock()
	return func() (sgx.FrameIndex, error) {
		return h.allocFrame(vm)
	}
}

func (h *Hypervisor) allocFrame(vm string) (sgx.FrameIndex, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.used[vm] >= h.quota[vm] {
		return -1, ErrQuotaReached
	}
	for h.next < h.m.NumFrames() {
		f := sgx.FrameIndex(h.next)
		h.next++
		if _, taken := h.handed[f]; taken {
			continue
		}
		h.handed[f] = vm
		h.used[vm]++
		return f, nil
	}
	return -1, ErrEPCExhausted
}

// EPCUsage reports per-VM granted frame counts.
func (h *Hypervisor) EPCUsage() map[string]int {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make(map[string]int, len(h.used))
	for k, v := range h.used {
		out[k] = v
	}
	return out
}

// ReleaseVM returns all frames granted to a VM (after it is destroyed or
// migrated away). The caller must have destroyed the VM's enclaves first.
func (h *Hypervisor) ReleaseVM(vm string) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	for f, owner := range h.handed {
		if owner != vm {
			continue
		}
		if !h.m.FrameFree(f) {
			// EREMOVE any leftover page (VA pages etc.).
			if err := h.m.EREMOVE(f); err != nil {
				return fmt.Errorf("vmm: release frame %d of %s: %w", f, vm, err)
			}
		}
		delete(h.handed, f)
	}
	h.used[vm] = 0
	return nil
}

package vmm

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/enclave"
	"repro/internal/telemetry"
)

// TransportFactory lets a test interpose on the per-enclave control channels
// LiveMigrate creates internally (e.g. to wrap them in fault injectors). It
// receives the enclave process name and the two pipe halves and returns the
// (possibly wrapped) halves: src goes to the source enclave's MigrateOut, dst
// to the target guest OS.
type TransportFactory func(name string, src, dst core.Transport) (core.Transport, core.Transport)

// PageCodec selects how LiveMigrate encodes guest pages onto the
// migration link (ablation A5 compares the three).
type PageCodec int

const (
	// CodecFramedDelta is the default: binary page frames, with pages that
	// were already sent this migration encoded as XOR+RLE deltas against
	// the previously sent content whenever the delta is smaller than the
	// raw page. Pages never sent before are delta'd against the zero page,
	// so even the bulk round compresses.
	CodecFramedDelta PageCodec = iota
	// CodecFramed uses binary raw-page frames only (no delta pass).
	CodecFramed
	// CodecGob gob-encodes each chunk and ships it inside a frame — the
	// reflection-based baseline the binary codec replaces.
	CodecGob
)

func (c PageCodec) String() string {
	switch c {
	case CodecFramedDelta:
		return "framed+delta"
	case CodecFramed:
		return "framed"
	case CodecGob:
		return "gob"
	}
	return fmt.Sprintf("PageCodec(%d)", int(c))
}

// LiveMigrationConfig parameterises a live VM migration.
type LiveMigrationConfig struct {
	// BandwidthBps is the simulated migration-link bandwidth in bytes per
	// second (default 125 MB/s ≈ 1 Gbps). 0 disables shaping.
	BandwidthBps float64
	// MaxRounds bounds the iterative pre-copy rounds (default 4).
	MaxRounds int
	// DirtyThresholdPages stops pre-copy early once the dirty set is small.
	DirtyThresholdPages int
	// ChunkPages is the transfer granularity: pages are copied, shipped and
	// applied in chunks of this many pages (default 64).
	ChunkPages int
	// SendQueueChunks bounds the sender queue: at most this many chunks may
	// be collected ahead of the (bandwidth-shaped) link (default 8).
	SendQueueChunks int
	// PageCodec selects the bulk page encoding (default CodecFramedDelta).
	PageCodec PageCodec
	// CompressRaw additionally DEFLATEs the residual raw-page frames the
	// delta codec passes through (first-touch pages and pages whose delta
	// would not shrink), trading sender CPU for wire bytes — worthwhile on
	// shaped links, not on fast local ones. Frames that do not shrink are
	// sent raw, so the knob never costs wire bytes.
	CompressRaw bool
	// SerialDump restores the paper's serial Fig. 8 schedule: the enclave
	// dump completes before the iterative pre-copy rounds start. By default
	// the dump overlaps pre-copy (the checkpoint pages land in guest memory
	// and ride later rounds either way). Fig. 10 runs set this to reproduce
	// the published serial timings.
	SerialDump bool
	// SerialChannelSetup runs the per-enclave target-side channel setups
	// (attest + DH + key install) one enclave at a time instead of
	// concurrently. The final in-enclave rebuild is serial either way, as in
	// the paper.
	SerialChannelSetup bool
	// TransportFactory, if set, wraps each enclave's internal control pipe
	// (tests inject transport faults through this).
	TransportFactory TransportFactory
	// Opts configures the per-enclave migrations (attestation service,
	// cipher, ...).
	Opts *core.Options
	// Tracer receives the migration's span tree (vmm.* phases plus the
	// core.* spans of each enclave's secure channel). When nil, LiveMigrate
	// still runs an internal tracer — the phase timings in
	// LiveMigrationStats are derived from its spans — it is just not
	// exported anywhere.
	Tracer *telemetry.Tracer
	// Metrics, if set, receives the per-page instruments (page-copy
	// latency, send-queue occupancy, round bytes, EPC frame gauges,
	// EENTER/ERESUME/AEX counts). Unlike Tracer there is no internal
	// default: the hot copy path stays uninstrumented when nil.
	Metrics *telemetry.Metrics
}

func (c *LiveMigrationConfig) bandwidth() float64 {
	if c.BandwidthBps == 0 {
		return 125e6
	}
	return c.BandwidthBps
}

func (c *LiveMigrationConfig) maxRounds() int {
	if c.MaxRounds == 0 {
		return 4
	}
	return c.MaxRounds
}

func (c *LiveMigrationConfig) threshold() int {
	if c.DirtyThresholdPages == 0 {
		return 64
	}
	return c.DirtyThresholdPages
}

func (c *LiveMigrationConfig) chunkPages() int {
	if c.ChunkPages == 0 {
		return 64
	}
	return c.ChunkPages
}

func (c *LiveMigrationConfig) sendQueue() int {
	if c.SendQueueChunks == 0 {
		return 8
	}
	return c.SendQueueChunks
}

// LiveMigrationStats are the Fig. 10 metrics plus the pipeline accounting.
type LiveMigrationStats struct {
	TotalTime        time.Duration
	Downtime         time.Duration
	PreCopyRounds    int
	TransferredBytes int64
	EnclaveCount     int
	// EnclaveDumpTime is the Fig. 9(d) total dumping latency: guest
	// notification until every enclave is ready.
	EnclaveDumpTime time.Duration
	// EnclaveRestoreTime is the Fig. 10(a) serial restore latency on the
	// target.
	EnclaveRestoreTime time.Duration
	// DumpPrecopyOverlap is how much of EnclaveDumpTime was hidden behind
	// concurrent pre-copy rounds (0 with SerialDump). Only the unhidden
	// remainder counts toward Downtime.
	DumpPrecopyOverlap time.Duration
	// RoundDirtyPages is the dirty-set size per round: index 0 is the bulk
	// round (every page), the rest the iterative rounds including the
	// residue sent right before stop-and-copy.
	RoundDirtyPages []int
	// Per-phase logical bytes: pages (or device-state payload) × their full
	// size, regardless of how the codec encoded them. BulkBytes +
	// PreCopyBytes + StopCopyBytes + EnclaveCtlBytes == TransferredBytes.
	BulkBytes       int64
	PreCopyBytes    int64
	StopCopyBytes   int64
	EnclaveCtlBytes int64
	// Wire accounting: bytes the framed codec actually put on the link per
	// phase, including frame headers. With CodecFramedDelta, WireBytes is
	// below TransferredBytes; the gap is what delta encoding saved.
	WireBytes         int64
	BulkWireBytes     int64
	PreCopyWireBytes  int64
	StopCopyWireBytes int64
	// Frame mix of the page stream: how many raw-page and delta frames were
	// sent, and the payload bytes delta encoding saved vs raw pages.
	RawFrames       int64
	DeltaFrames     int64
	DeltaSavedBytes int64
	// RawzFrames counts residual raw frames that went out DEFLATE-
	// compressed (CompressRaw), and FlateSavedBytes the payload bytes the
	// compression removed on top of the delta savings.
	RawzFrames      int64
	FlateSavedBytes int64
}

// link simulates the migration network link.
type link struct {
	mu    sync.Mutex
	bps   float64
	bytes int64 // guarded by mu
}

func (l *link) transfer(n int64) {
	l.mu.Lock()
	l.bytes += n
	bps := l.bps
	l.mu.Unlock()
	if bps > 0 && n > 0 {
		time.Sleep(time.Duration(float64(n) / bps * 1e9))
	}
}

func (l *link) total() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.bytes
}

// gobChunk is the CodecGob payload: one captured chunk, gob-encoded inside
// a FrameGob frame. It reproduces the reflection-based encoding the binary
// codec replaced, as the A5 ablation baseline.
type gobChunk struct {
	Pages []int
	Data  []byte
}

// sendItem is one frame queued for transmission, with the per-phase
// accounting it belongs to (the counters are touched only by the sender
// goroutine, then read after drain).
type sendItem struct {
	f       *core.PageFrame
	logical int64  // page payload bytes this frame represents
	logCtr  *int64 // per-phase logical byte counter
	wireCtr *int64 // per-phase wire byte counter
}

// chunkSender is the transmit pipeline of the page stream: the collector
// side captures and encodes chunks into frames and enqueues them, a sender
// goroutine pushes the frames through a bandwidth-shaped core.FrameTransport,
// and an applier goroutine on the "target" half of that pipe decodes and
// installs them into target memory. Collection thus overlaps transmission,
// and transmission overlaps application. FIFO order end to end guarantees
// that a page re-sent in a later round overwrites its earlier copy on the
// target — and that the target-side page content always matches the delta
// baseline the collector recorded in cache when it encoded the frame.
type chunkSender struct {
	ft    core.FrameTransport // source half of the shaped page stream
	bc    core.ByteCounter    // = ft; wire bytes actually enqueued
	codec PageCodec
	cache core.DeltaCache // last-sent page content, collector-only

	ch      chan sendItem
	wg      sync.WaitGroup // sender goroutine
	once    sync.Once      // guards drain
	applied chan struct{}  // closed when the applier goroutine exits

	sendErr  error // written by the sender goroutine; read after wg.Wait
	applyErr error // written by the applier goroutine; read after <-applied
	drainErr error // set inside drain's once

	flate bool // DEFLATE residual raw frames (CompressRaw)

	// Frame-mix accounting, collector-only until drain.
	rawFrames   int64
	deltaFrames int64
	deltaSaved  int64
	rawzFrames  int64
	flateSaved  int64

	// Instruments, nil when the migration runs without a metrics registry
	// (their methods are nil-safe, but copyHist gates a time.Now pair so
	// the uninstrumented copy path pays nothing).
	copyHist *telemetry.Histogram // page-copy latency, ns per chunk
	qGauge   *telemetry.Gauge     // queue occupancy after each enqueue/send
	sentCtr  *telemetry.Counter   // pages applied on the target
	wireCtr  *telemetry.Counter   // bytes on the wire, all phases
	hitRatio *telemetry.Ratio     // delta-frame pages / all pages sent
}

func newChunkSender(dst *GuestMemory, cfg *LiveMigrationConfig, met *telemetry.Metrics) *chunkSender {
	src, tgt := core.NewShapedPipe(0, cfg.bandwidth())
	s := &chunkSender{
		ft:      src.(core.FrameTransport),
		bc:      src.(core.ByteCounter),
		codec:   cfg.PageCodec,
		flate:   cfg.CompressRaw,
		cache:   make(core.DeltaCache),
		ch:      make(chan sendItem, cfg.sendQueue()),
		applied: make(chan struct{}),
	}
	rt := tgt.(core.FrameTransport)
	if met != nil {
		s.copyHist = met.Histogram("vmm.pagecopy.ns", pageCopyBounds)
		s.qGauge = met.Gauge("vmm.sendq.chunks")
		s.sentCtr = met.Counter("vmm.pages.sent")
		s.wireCtr = met.Counter("vmm.wire.bytes")
		s.hitRatio = met.Ratio("vmm.delta.hitrate")
	}
	s.wg.Add(1)
	go func() { // sender: frames through the shaped link
		defer s.wg.Done()
		for it := range s.ch {
			if s.sendErr != nil {
				it.f.Release()
				continue
			}
			before := s.bc.BytesSent()
			if err := s.ft.SendFrame(it.f); err != nil {
				s.sendErr = err
				continue
			}
			wire := s.bc.BytesSent() - before
			*it.logCtr += it.logical
			*it.wireCtr += wire
			s.wireCtr.Add(wire)
			s.qGauge.Set(int64(len(s.ch)))
		}
	}()
	go func() { // applier: decode and install on the target half
		defer close(s.applied)
		for {
			f, err := rt.RecvFrame()
			if err != nil {
				// A closed stream is drain (or failure unwind), not an
				// apply error in its own right.
				if !errors.Is(err, core.ErrTransportClosed) {
					s.applyErr = err
				}
				return
			}
			done := f.Kind == core.FrameEnd
			aerr := applyFrame(dst, f, s.sentCtr)
			f.Release()
			if aerr != nil {
				s.applyErr = aerr
				_ = rt.Close() // unblock the sender
				return
			}
			if done {
				return
			}
		}
	}()
	return s
}

// applyFrame installs one received frame into target guest memory.
func applyFrame(dst *GuestMemory, f *core.PageFrame, pages *telemetry.Counter) error {
	if n := len(f.Pages); n > 0 && f.Pages[n-1] >= dst.Pages() {
		return fmt.Errorf("vmm: migrated page %d outside guest memory", f.Pages[n-1])
	}
	switch f.Kind {
	case core.FrameRaw:
		dst.ApplyPages(f.Pages, f.Data)
		pages.Add(int64(len(f.Pages)))
	case core.FrameDelta:
		if err := dst.ApplyPageDeltas(f.Pages, f.Sizes, f.Data); err != nil {
			return err
		}
		pages.Add(int64(len(f.Pages)))
	case core.FrameGob:
		var c gobChunk
		if err := gob.NewDecoder(bytes.NewReader(f.Data)).Decode(&c); err != nil {
			return fmt.Errorf("vmm: decode gob chunk: %w", err)
		}
		if len(c.Data) != len(c.Pages)*PageSize {
			return fmt.Errorf("vmm: gob chunk size mismatch: %d pages, %d bytes", len(c.Pages), len(c.Data))
		}
		for _, p := range c.Pages {
			if p < 0 || p >= dst.Pages() {
				return fmt.Errorf("vmm: migrated page %d outside guest memory", p)
			}
		}
		dst.ApplyPages(c.Pages, c.Data)
		pages.Add(int64(len(c.Pages)))
	case core.FrameBlob:
		// Opaque device/system state: shipped for its transfer time,
		// nothing to install in the simulation.
	case core.FrameEnd:
		// Stream terminator; the caller stops on it.
	case core.FrameRawZ:
		rf, err := core.InflateRawFrame(f)
		if err != nil {
			return err
		}
		dst.ApplyPages(rf.Pages, rf.Data)
		pages.Add(int64(len(rf.Pages)))
		rf.Release()
	}
	return nil
}

// pageCopyBounds buckets the per-chunk source copy latency (nanoseconds).
// Log-spaced so the p50/p90/p99 estimates in /metrics keep bounded
// relative error across the microsecond-to-millisecond tail.
var pageCopyBounds = telemetry.LogBounds(1000, 10_000_000) // 1µs .. 10ms

// roundBytesBounds buckets the per-round transfer volume (bytes).
var roundBytesBounds = telemetry.LogBounds(1<<16, 1<<28) // 64KiB .. 256MiB

// send captures the given source pages in chunks, encodes each chunk per
// the configured codec, and enqueues the resulting frames. It blocks only
// when the queue is full (the link is the bottleneck). ctx is the sending
// phase's trace context: each copy latency is recorded with it as a bucket
// exemplar, so a surprising p99 in vmm.pagecopy.ns points at a concrete
// bulk/pre-copy/stop-copy span to open.
func (s *chunkSender) send(src *GuestMemory, pages []int, chunk int, logCtr, wireCtr *int64, ctx telemetry.Context) {
	for off := 0; off < len(pages); off += chunk {
		end := off + chunk
		if end > len(pages) {
			end = len(pages)
		}
		part := pages[off:end]
		logical := int64(len(part)) * PageSize
		switch s.codec {
		case CodecFramed:
			f := core.NewRawFrame(part)
			s.capture(src, part, f.Data, ctx)
			s.rawFrames++
			s.enqueue(f, logical, logCtr, wireCtr)
		case CodecGob:
			data := core.GetBuf(len(part) * PageSize)
			s.capture(src, part, data, ctx)
			var buf bytes.Buffer
			// Gob of a plain slice struct into a bytes.Buffer cannot fail.
			_ = gob.NewEncoder(&buf).Encode(gobChunk{Pages: part, Data: data})
			core.PutBuf(data)
			s.enqueue(&core.PageFrame{Kind: core.FrameGob, Data: buf.Bytes()}, logical, logCtr, wireCtr)
		default: // CodecFramedDelta
			data := core.GetBuf(len(part) * PageSize)
			s.capture(src, part, data, ctx)
			raw, delta, saved := core.EncodeChunk(part, data, s.cache)
			s.deltaSaved += saved
			if raw != nil {
				rawLogical := int64(len(raw.Pages)) * PageSize
				s.observePages(len(raw.Pages), false)
				if s.flate {
					if z := core.DeflateRawFrame(raw); z != nil {
						s.rawzFrames++
						s.flateSaved += rawLogical - int64(len(z.Data))
						s.enqueue(z, rawLogical, logCtr, wireCtr)
						raw = nil
					}
				}
				if raw != nil {
					s.rawFrames++
					s.enqueue(raw, rawLogical, logCtr, wireCtr)
				}
			}
			if delta != nil {
				s.deltaFrames++
				s.observePages(len(delta.Pages), true)
				s.enqueue(delta, int64(len(delta.Pages))*PageSize, logCtr, wireCtr)
			}
		}
	}
}

// capture copies the chunk's pages out of source memory, timing the copy
// when instrumented.
func (s *chunkSender) capture(src *GuestMemory, part []int, dst []byte, ctx telemetry.Context) {
	if s.copyHist != nil {
		t0 := time.Now()
		src.CopyPages(part, dst)
		s.copyHist.ObserveExemplar(time.Since(t0).Nanoseconds(), ctx)
		return
	}
	src.CopyPages(part, dst)
}

func (s *chunkSender) enqueue(f *core.PageFrame, logical int64, logCtr, wireCtr *int64) {
	s.ch <- sendItem{f: f, logical: logical, logCtr: logCtr, wireCtr: wireCtr}
	s.qGauge.Set(int64(len(s.ch)))
}

// observePages files one delta-hit-rate observation per page of a frame.
func (s *chunkSender) observePages(n int, hit bool) {
	for i := 0; i < n; i++ {
		s.hitRatio.Observe(hit)
	}
}

// sendBlob ships n bytes of opaque state (device/system state) through the
// page stream as a FrameBlob, so it shares the link's shaping and wire
// accounting with the page frames.
func (s *chunkSender) sendBlob(n int, logCtr, wireCtr *int64) {
	s.enqueue(&core.PageFrame{Kind: core.FrameBlob, Data: make([]byte, n)}, int64(n), logCtr, wireCtr)
}

// drain closes the queue, terminates the stream with a FrameEnd, and waits
// until every in-flight frame has crossed the link and landed in target
// memory. Idempotent: the failure path may drain after the stop-and-copy
// phase already has. Returns the first transmit or apply error.
func (s *chunkSender) drain() error {
	s.once.Do(func() {
		close(s.ch)
		s.wg.Wait()
		if s.sendErr == nil {
			if err := s.ft.SendFrame(&core.PageFrame{Kind: core.FrameEnd}); err != nil {
				s.sendErr = err
			}
		}
		if s.sendErr != nil {
			// No terminator made it out; close the stream so an applier
			// parked on RecvFrame exits.
			_ = s.ft.Close()
		}
		<-s.applied
		_ = s.ft.Close()
		s.drainErr = s.sendErr
		if s.drainErr == nil {
			s.drainErr = s.applyErr
		}
	})
	return s.drainErr
}

// dumpResult carries PrepareAllEnclaves' outcome out of its goroutine.
type dumpResult struct {
	blobs map[string][]byte
	took  time.Duration
	err   error
}

// LiveMigrate live-migrates a VM (with any enclaves inside) from its node to
// dst, implementing the pipeline of Fig. 8:
//
//  1. bulk round of every guest page, streamed through a bounded sender,
//  2. the guest OS prepares every enclave (two-phase checkpointing; the
//     encrypted checkpoints land in guest memory) — by default concurrently
//     with the pre-copy rounds, serially with cfg.SerialDump,
//  3. iterative pre-copy of guest memory while non-enclave work continues,
//  4. stop-and-copy of the residual dirty set,
//  5. per-enclave secure migration (attested channel, key release with
//     self-destroy, restore with in-enclave CSSA verification); channel
//     setups may run concurrently across enclaves but key release and the
//     in-enclave rebuild stay serial as in the paper — so a setup failure in
//     any enclave can still cancel every sibling before commitment,
//  6. resume on the target.
//
// Per the paper's accounting, the reported downtime includes the enclave
// checkpointing time even though non-enclave applications keep running
// during it; with the pipelined schedule only the dump time that pre-copy
// could not hide is charged.
func LiveMigrate(vm *VM, dst *Node, cfg *LiveMigrationConfig) (*VM, *LiveMigrationStats, error) {
	if cfg == nil {
		cfg = &LiveMigrationConfig{}
	}
	opts := cfg.Opts
	if opts == nil {
		opts = &core.Options{Service: vm.Node.Service}
	}
	stats := &LiveMigrationStats{}
	// The page stream has its own shaped transport inside the chunk sender;
	// this link only carries the per-enclave control-protocol traffic.
	l := &link{bps: cfg.bandwidth()}
	met := cfg.Metrics

	// The tracer is always on: the phase timings reported in stats are the
	// durations of the spans below, so a cfg.Tracer simply additionally
	// gets to export what LiveMigrate measures anyway.
	tr := cfg.Tracer
	if tr == nil {
		tr = telemetry.New()
	}
	root := tr.Begin("vmm.livemigrate", telemetry.String("vm", vm.Name), telemetry.String("dst", dst.Name))
	defer root.End()

	tvm, err := dst.CreateVM(vm.Config)
	if err != nil {
		root.Fail(err)
		return nil, nil, err
	}
	// Publish EPC frame accounting of both guests for the migration's
	// duration (dark when met is nil).
	vm.OS.Host().Mgr.SetMetrics(met)
	tvm.OS.Host().Mgr.SetMetrics(met)

	procs := vm.OS.Processes()
	stats.EnclaveCount = len(procs)
	root.Annotate(telemetry.Int("enclaves", len(procs)))

	snd := newChunkSender(tvm.Mem, cfg, met)
	// fail unwinds a partial migration: finish the stream, resume the source
	// enclaves, and tear down the half-built target VM so its guest memory
	// and any restored enclaves' EPC are returned. Stream errors don't
	// matter anymore — the migration is already failing.
	fail := func(err error) (*VM, *LiveMigrationStats, error) {
		_ = snd.drain()
		vm.OS.CancelMigration()
		_ = tvm.Shutdown()
		root.Fail(err)
		return nil, nil, err
	}

	// Enclave dump (Fig. 8 steps 1-6; Fig. 9(d) metric). The encrypted
	// checkpoints land in guest memory and dirty it, so they ride later
	// pre-copy rounds — this is the extra transferred data of Fig. 10(d).
	// By default the dump runs concurrently with the bulk and iterative
	// rounds below; SerialDump blocks here first, reproducing the paper's
	// serial schedule.
	dumpCh := make(chan dumpResult, 1)
	dumpPending := false
	var blobs map[string][]byte
	if len(procs) > 0 {
		// The dump span parents the per-enclave core.prepare/core.dump
		// spans; runDump owns its lifetime on both schedules.
		runDump := func(sp *telemetry.Span) dumpResult {
			dumpOpts := *opts
			dumpOpts.Trace = sp
			var r dumpResult
			r.blobs, r.took, r.err = vm.OS.PrepareAllEnclaves(&dumpOpts)
			if r.err != nil {
				sp.Fail(r.err)
			} else {
				sp.Annotate(telemetry.Duration("guest_dump", r.took))
				sp.End()
			}
			return r
		}
		if cfg.SerialDump {
			// Child, not Fork: the serial schedule keeps the dump on the
			// main track, strictly before the bulk round in the trace.
			r := runDump(root.Child("vmm.dump", telemetry.String("schedule", "serial")))
			if r.err != nil {
				return fail(fmt.Errorf("vmm: prepare enclaves: %w", r.err))
			}
			blobs, stats.EnclaveDumpTime = r.blobs, r.took
		} else {
			dumpPending = true
			dumpSp := root.Fork("vmm.dump", telemetry.String("schedule", "pipelined"))
			go func() { dumpCh <- runDump(dumpSp) }()
		}
	}

	roundHist := met.Histogram("vmm.round.bytes", roundBytesBounds)

	// Bulk round (round 0) of every guest page, overlapped with the dump.
	vm.Mem.MarkAllDirty()
	round0 := vm.Mem.CollectDirty()
	stats.RoundDirtyPages = append(stats.RoundDirtyPages, len(round0))
	bulkSp := root.Child("vmm.bulk", telemetry.Int("pages", len(round0)))
	snd.send(vm.Mem, round0, cfg.chunkPages(), &stats.BulkBytes, &stats.BulkWireBytes, bulkSp.Context())
	bulkSp.End()
	roundHist.Observe(int64(len(round0)) * PageSize)

	// Iterative pre-copy of the dirty residue (checkpoint pages plus
	// whatever the still-running plain processes touch). While the dump is
	// pending the rounds keep spinning — that transmission time is hidden
	// dump time; dumpWaited is the part pre-copy could not hide.
	var dumpWaited time.Duration
	for round := 1; ; round++ {
		if dumpPending {
			select {
			case r := <-dumpCh:
				if r.err != nil {
					return fail(fmt.Errorf("vmm: prepare enclaves: %w", r.err))
				}
				blobs, stats.EnclaveDumpTime = r.blobs, r.took
				dumpPending = false
			default:
			}
		}
		dirty := vm.Mem.CollectDirty()
		stats.RoundDirtyPages = append(stats.RoundDirtyPages, len(dirty))
		converged := len(dirty) <= cfg.threshold() || round >= cfg.maxRounds()
		roundSp := root.Child("vmm.precopy.round",
			telemetry.Int("round", round), telemetry.Int("pages", len(dirty)))
		snd.send(vm.Mem, dirty, cfg.chunkPages(), &stats.PreCopyBytes, &stats.PreCopyWireBytes, roundSp.Context())
		roundSp.End()
		opts.Journal.Append(telemetry.EventPrecopyRound, vm.Name, roundSp.Context(),
			telemetry.Int("round", round), telemetry.Int("pages", len(dirty)))
		roundHist.Observe(int64(len(dirty)) * PageSize)
		if !converged {
			continue
		}
		if dumpPending {
			// Pre-copy has converged but the checkpoints are not out yet:
			// this wait is the dump time the pipeline failed to hide.
			waitSp := root.Child("vmm.dumpwait")
			r := <-dumpCh
			waitSp.End()
			dumpWaited += waitSp.Duration()
			if r.err != nil {
				return fail(fmt.Errorf("vmm: prepare enclaves: %w", r.err))
			}
			blobs, stats.EnclaveDumpTime = r.blobs, r.took
			dumpPending = false
			// One more round so the checkpoint pages ride pre-copy rather
			// than bloating the stop-and-copy window.
			continue
		}
		stats.PreCopyRounds = round
		break
	}
	if stats.EnclaveDumpTime > dumpWaited {
		stats.DumpPrecopyOverlap = stats.EnclaveDumpTime - dumpWaited
	}
	if cfg.SerialDump {
		stats.DumpPrecopyOverlap = 0
	}

	// Stop-and-copy (downtime window begins). Enclave workers are already
	// parked in their in-enclave spin regions; stop the rest, ship the final
	// dirty set and the device state, and drain the stream — everything must
	// have landed before the target may resume. The downtime span runs
	// until the target resumes; the deferred End covers the fail paths.
	downSp := root.Child("vmm.downtime")
	defer downSp.End()
	vm.OS.StopPlain()
	final := vm.Mem.CollectDirty()
	stats.RoundDirtyPages = append(stats.RoundDirtyPages, len(final))
	scSp := downSp.Child("vmm.stopcopy", telemetry.Int("pages", len(final)))
	snd.send(vm.Mem, final, cfg.chunkPages(), &stats.StopCopyBytes, &stats.StopCopyWireBytes, scSp.Context())
	snd.sendBlob(64*1024, &stats.StopCopyBytes, &stats.StopCopyWireBytes) // device state
	if err := snd.drain(); err != nil {
		err = fmt.Errorf("vmm: page stream: %w", err)
		scSp.Fail(err)
		return fail(err)
	}
	scSp.End()
	opts.Journal.Append(telemetry.EventStopCopy, vm.Name, scSp.Context(),
		telemetry.Int("pages", len(final)))
	roundHist.Observe(int64(len(final)) * PageSize)

	// Per-enclave secure migration. Each enclave gets an internal control
	// pipe; the source half runs MigrateOutChannel in a goroutine (image +
	// checkpoint transfer, attestation, DH — everything up to but excluding
	// key release) and the target half runs the guest OS receive path up to
	// the same point. Channel setups proceed concurrently across enclaves
	// unless SerialChannelSetup; the commit (key release + in-enclave
	// rebuild) below is serial either way ("the enclaves are rebuilt one by
	// one"). Keeping key release out of this phase means a failure in any
	// enclave's setup can still cancel every sibling: no source has
	// self-destroyed yet.
	type encMigration struct {
		p       *Process
		ts      core.Transport
		sp      *telemetry.Span // channel-setup span; owns both goroutines
		srcDone chan struct{}
		tgtDone chan struct{}
		ps      *core.PreparedSource
		srcErr  error
		ip      *IncomingProcess
		tgtErr  error
	}
	migs := make([]*encMigration, 0, len(procs))
	launch := func(p *Process) *encMigration {
		t1, t2 := core.NewPipe()
		var ts, td core.Transport = t1, t2
		if cfg.TransportFactory != nil {
			ts, td = cfg.TransportFactory(p.Name, t1, t2)
		}
		// Fork: concurrent channel setups land on their own trace rows.
		// The core.channel / core.target.prepare spans of both halves
		// parent here via the per-enclave Options clone.
		sp := downSp.Fork("vmm.enclave.channel", telemetry.String("enclave", p.Name))
		encOpts := *opts
		encOpts.Trace = sp
		m := &encMigration{p: p, ts: ts, sp: sp, srcDone: make(chan struct{}), tgtDone: make(chan struct{})}
		go func() {
			defer close(m.srcDone)
			m.ps, m.srcErr = core.MigrateOutChannel(p.RT, blobs[p.Name], ts, &encOpts)
			if m.srcErr != nil {
				// Unblock the target side: the pipe halves share a close,
				// so its pending Recv fails instead of parking forever.
				_ = ts.Close()
			}
		}()
		go func() {
			defer close(m.tgtDone)
			m.ip, m.tgtErr = tvm.OS.ReceiveEnclaveProcessPrepare(p.Name, p.Image, td, &encOpts, p.workload)
			if m.tgtErr != nil {
				_ = td.Close()
			}
		}()
		return m
	}
	for _, p := range procs {
		m := launch(p)
		migs = append(migs, m)
		if cfg.SerialChannelSetup {
			<-m.srcDone
			<-m.tgtDone
		}
	}

	// Serial commit + rebuild on the target. Past the first successful
	// release the migration is committed (that source has self-destroyed); a
	// later failure still unwinds — the paper accepts losing the instance
	// over forking it.
	commitAll := downSp.Child("vmm.commit")
	defer commitAll.End()
	var migErr error
	for _, m := range migs {
		// Both goroutines always terminate: each closes its pipe half on
		// error, which unblocks the peer's pending Recv.
		<-m.srcDone
		<-m.tgtDone
		switch {
		case m.srcErr != nil:
			m.sp.Fail(m.srcErr)
		case m.tgtErr != nil:
			m.sp.Fail(m.tgtErr)
		default:
			m.sp.End()
		}
		switch {
		case migErr != nil:
			if m.tgtErr == nil {
				m.ip.Abort("sibling enclave migration failed")
			}
			if m.srcErr == nil {
				_ = m.ps.Cancel("sibling enclave migration failed")
			}
		case m.srcErr != nil:
			migErr = fmt.Errorf("vmm: migrate enclave %s: %w", m.p.Name, m.srcErr)
			if m.tgtErr == nil {
				m.ip.Abort("source channel setup failed")
			}
		case m.tgtErr != nil:
			migErr = fmt.Errorf("vmm: migrate enclave %s: %w", m.p.Name, m.tgtErr)
			_ = m.ps.Cancel("target prepare failed")
		default:
			// Commit point (Sec. V-B): the source releases Kmigrate and
			// self-destroys strictly before the key crosses the channel;
			// the target installs it and rebuilds. Release blocks on the
			// target's MsgDone, so the two halves run concurrently.
			cSp := commitAll.Child("vmm.enclave.commit", telemetry.String("enclave", m.p.Name))
			// The commit consumes the session the channel-setup span built
			// on its own forked track; the link draws that handoff as a
			// flow arrow in the merged trace.
			cSp.Link(m.sp.Context())
			relDone := make(chan error, 1)
			go func(m *encMigration) {
				_, err := m.ps.Release()
				if err != nil {
					// Unblock a Restore parked on the key receive.
					_ = m.ts.Close()
				}
				relDone <- err
			}(m)
			_, _, rerr := m.ip.Restore()
			relErr := <-relDone
			if rerr != nil {
				migErr = fmt.Errorf("vmm: migrate enclave %s: %w", m.p.Name, rerr)
				cSp.Fail(rerr)
			} else if relErr != nil {
				migErr = fmt.Errorf("vmm: migrate enclave %s: %w", m.p.Name, relErr)
				cSp.Fail(relErr)
			} else {
				cSp.End()
			}
		}
		// Control-protocol traffic (quote, verdict, DH, sealed key).
		l.transfer(1024)
		stats.EnclaveCtlBytes += 1024
	}
	if migErr != nil {
		return fail(migErr)
	}
	commitAll.End()
	if len(procs) > 0 {
		stats.EnclaveRestoreTime = commitAll.Duration()
	}

	// Resume on the target.
	for _, tp := range tvm.OS.Processes() {
		tp.start()
	}
	downSp.End()
	root.End()
	// Stats are read back off the spans: the tracer is the single source
	// of truth for the phase timings.
	stats.Downtime = downSp.Duration() + stats.EnclaveDumpTime - stats.DumpPrecopyOverlap
	stats.TotalTime = root.Duration()
	opts.Journal.Append(telemetry.EventDowntime, vm.Name, downSp.Context(),
		telemetry.Duration("downtime", stats.Downtime))
	// Logical total partitions exactly into the per-phase counters; the
	// wire total adds the framed stream's real encoded size to the control
	// traffic (which has no framed encoding — its estimate counts 1:1).
	stats.TransferredBytes = stats.BulkBytes + stats.PreCopyBytes + stats.StopCopyBytes + stats.EnclaveCtlBytes
	stats.WireBytes = stats.BulkWireBytes + stats.PreCopyWireBytes + stats.StopCopyWireBytes + l.total()
	stats.RawFrames = snd.rawFrames
	stats.DeltaFrames = snd.deltaFrames
	stats.DeltaSavedBytes = snd.deltaSaved
	stats.RawzFrames = snd.rawzFrames
	stats.FlateSavedBytes = snd.flateSaved
	if met != nil {
		// Hardware execution counters at migration end; both machines so
		// AEX storms on either side are visible in /metrics.
		ee, er, ax := vm.Node.Machine.ExecCounters()
		met.Gauge("sgx.source.eenter").Set(int64(ee))
		met.Gauge("sgx.source.eresume").Set(int64(er))
		met.Gauge("sgx.source.aex").Set(int64(ax))
		ee, er, ax = dst.Machine.ExecCounters()
		met.Gauge("sgx.target.eenter").Set(int64(ee))
		met.Gauge("sgx.target.eresume").Set(int64(er))
		met.Gauge("sgx.target.aex").Set(int64(ax))
	}

	// The source VM is gone; its enclaves have self-destroyed, so their
	// parked host loops exit with ErrDestroyed and the EPC can be freed.
	vm.dead.Store(true)
	for _, p := range procs {
		p.Stop()
		_ = destroyWithRetry(p)
	}
	return tvm, stats, nil
}

// destroyWithRetry frees the source enclave's EPC after its worker threads
// have observed self-destruction.
func destroyWithRetry(p *Process) error {
	var err error
	for i := 0; i < 100; i++ {
		if err = p.RT.Destroy(); err == nil {
			return nil
		}
		time.Sleep(time.Millisecond)
	}
	return err
}

// IncomingProcess is a target-side enclave process whose build and attested
// channel have completed but whose key delivery and in-enclave rebuild have
// not run yet. LiveMigrate prepares all enclaves (possibly concurrently) and
// then calls Restore on each in turn.
type IncomingProcess struct {
	os         *OS
	name       string
	image      string
	workload   WorkloadFunc
	pt         *core.PreparedTarget
	sharedBase uint64
	sharedSize uint64
}

// ReceiveEnclaveProcessPrepare is the target guest OS half of one enclave
// migration up to (but excluding) the key delivery and restore: allocate a
// shared region in this VM's memory, rebuild the image, and run the attested
// channel. The returned IncomingProcess must be finished with Restore or
// released with Abort.
func (o *OS) ReceiveEnclaveProcessPrepare(name, image string, t core.Transport, opts *core.Options, workload WorkloadFunc) (*IncomingProcess, error) {
	dep, ok := o.reg.Lookup(image)
	if !ok {
		return nil, fmt.Errorf("vmm: image %q not deployed in guest %s", image, o.Name)
	}
	size := uint64(enclave.SharedSizeFor(appLayout(dep.App)))
	base, err := o.allocShared(size)
	if err != nil {
		return nil, err
	}
	region, err := o.mem.Region(base, size)
	if err != nil {
		return nil, err
	}
	inOpts := *opts
	inOpts.BuildOptions = append(append([]enclave.BuildOption(nil), opts.BuildOptions...), enclave.WithShared(region))
	pt, err := core.MigrateInPrepare(o.host, o.reg, t, &inOpts)
	if err != nil {
		return nil, err
	}
	return &IncomingProcess{
		os:         o,
		name:       name,
		image:      image,
		workload:   workload,
		pt:         pt,
		sharedBase: base,
		sharedSize: size,
	}, nil
}

// Restore receives and installs the migration key, performs the serial
// in-enclave rebuild (CSSA restore + verify), and registers the process with
// the guest OS; its workload loops start when the VM resumes. On failure the
// built enclave's EPC has been freed.
func (ip *IncomingProcess) Restore() (*Process, *core.Incoming, error) {
	inc, err := ip.pt.Finish()
	if err != nil {
		return nil, nil, err
	}
	// Drain in-flight ecall completions; the workload loops reclaim the
	// workers afterwards.
	go func() {
		for range inc.Results {
		}
	}()
	p := &Process{
		Name:       ip.name,
		Image:      ip.image,
		RT:         inc.Runtime,
		workload:   ip.workload,
		sharedBase: ip.sharedBase,
		sharedSize: ip.sharedSize,
	}
	ip.os.mu.Lock()
	ip.os.procs = append(ip.os.procs, p)
	ip.os.mu.Unlock()
	return p, inc, nil
}

// Abort tears the prepared target process down without restoring (the peer
// is notified and the enclave's EPC returned).
func (ip *IncomingProcess) Abort(reason string) { ip.pt.Abort(reason) }

// ReceiveEnclaveProcess runs the complete target guest OS half of one
// enclave migration: prepare (shared region, rebuild, channel, key) followed
// immediately by the restore.
func (o *OS) ReceiveEnclaveProcess(name, image string, t core.Transport, opts *core.Options, workload WorkloadFunc) (*Process, *core.Incoming, error) {
	ip, err := o.ReceiveEnclaveProcessPrepare(name, image, t, opts, workload)
	if err != nil {
		return nil, nil, err
	}
	return ip.Restore()
}

package vmm

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/enclave"
)

// LiveMigrationConfig parameterises a live VM migration.
type LiveMigrationConfig struct {
	// BandwidthBps is the simulated migration-link bandwidth in bytes per
	// second (default 125 MB/s ≈ 1 Gbps). 0 disables shaping.
	BandwidthBps float64
	// MaxRounds bounds the iterative pre-copy rounds (default 4).
	MaxRounds int
	// DirtyThresholdPages stops pre-copy early once the dirty set is small.
	DirtyThresholdPages int
	// Opts configures the per-enclave migrations (attestation service,
	// cipher, ...).
	Opts *core.Options
}

func (c *LiveMigrationConfig) bandwidth() float64 {
	if c.BandwidthBps == 0 {
		return 125e6
	}
	return c.BandwidthBps
}

func (c *LiveMigrationConfig) maxRounds() int {
	if c.MaxRounds == 0 {
		return 4
	}
	return c.MaxRounds
}

func (c *LiveMigrationConfig) threshold() int {
	if c.DirtyThresholdPages == 0 {
		return 64
	}
	return c.DirtyThresholdPages
}

// LiveMigrationStats are the Fig. 10 metrics.
type LiveMigrationStats struct {
	TotalTime        time.Duration
	Downtime         time.Duration
	PreCopyRounds    int
	TransferredBytes int64
	EnclaveCount     int
	// EnclaveDumpTime is the Fig. 9(d) total dumping latency: guest
	// notification until every enclave is ready.
	EnclaveDumpTime time.Duration
	// EnclaveRestoreTime is the Fig. 10(a) serial restore latency on the
	// target.
	EnclaveRestoreTime time.Duration
}

// link simulates the migration network link.
type link struct {
	mu    sync.Mutex
	bps   float64
	bytes int64 // guarded by mu
}

func (l *link) transfer(n int64) {
	l.mu.Lock()
	l.bytes += n
	bps := l.bps
	l.mu.Unlock()
	if bps > 0 && n > 0 {
		time.Sleep(time.Duration(float64(n) / bps * 1e9))
	}
}

func (l *link) total() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.bytes
}

// LiveMigrate live-migrates a VM (with any enclaves inside) from its node to
// dst, implementing the pipeline of Fig. 8:
//
//  1. the guest OS prepares every enclave (two-phase checkpointing; the
//     encrypted checkpoints land in guest memory),
//  2. iterative pre-copy of guest memory while non-enclave work continues,
//  3. stop-and-copy of the residual dirty set,
//  4. per-enclave secure migration (attested channel, key release with
//     self-destroy, restore with in-enclave CSSA verification), rebuilt
//     serially as in the paper,
//  5. resume on the target.
//
// Per the paper's accounting, the reported downtime includes the enclave
// checkpointing time even though non-enclave applications keep running
// during it.
func LiveMigrate(vm *VM, dst *Node, cfg *LiveMigrationConfig) (*VM, *LiveMigrationStats, error) {
	if cfg == nil {
		cfg = &LiveMigrationConfig{}
	}
	opts := cfg.Opts
	if opts == nil {
		opts = &core.Options{Service: vm.Node.Service}
	}
	stats := &LiveMigrationStats{}
	l := &link{bps: cfg.bandwidth()}
	start := time.Now()

	tvm, err := dst.CreateVM(vm.Config)
	if err != nil {
		return nil, nil, err
	}

	procs := vm.OS.Processes()
	stats.EnclaveCount = len(procs)

	// Step 1: bulk round (round 0) of every guest page.
	vm.Mem.MarkAllDirty()
	page := make([]byte, PageSize)
	round0 := vm.Mem.CollectDirty()
	for _, p := range round0 {
		vm.Mem.CopyPage(p, page)
		tvm.Mem.ApplyPage(p, page)
	}
	l.transfer(int64(len(round0)) * PageSize)

	// Step 2: prepare all enclaves (Fig. 8 steps 1-6; Fig. 9(d) metric).
	// The encrypted checkpoints land in guest memory and dirty it, so they
	// ride the remaining pre-copy rounds — this is the extra transferred
	// data of Fig. 10(d).
	var blobs map[string][]byte
	if len(procs) > 0 {
		blobs, stats.EnclaveDumpTime, err = vm.OS.PrepareAllEnclaves(opts)
		if err != nil {
			return nil, nil, fmt.Errorf("vmm: prepare enclaves: %w", err)
		}
	}

	// Step 3: iterative pre-copy of the dirty residue (checkpoint pages
	// plus whatever the still-running plain processes touch).
	for round := 1; ; round++ {
		dirty := vm.Mem.CollectDirty()
		if round > 0 && (len(dirty) <= cfg.threshold() || round >= cfg.maxRounds()) {
			// Keep the residue for the stop-and-copy phase.
			for _, p := range dirty {
				vm.Mem.CopyPage(p, page)
				tvm.Mem.ApplyPage(p, page)
			}
			// Residual set is re-sent below after the VM stops; don't
			// count it twice — the final CollectDirty picks up anything
			// dirtied from here on, plus we transfer this residue now.
			l.transfer(int64(len(dirty)) * PageSize)
			stats.PreCopyRounds = round
			break
		}
		for _, p := range dirty {
			vm.Mem.CopyPage(p, page)
			tvm.Mem.ApplyPage(p, page)
		}
		l.transfer(int64(len(dirty)) * PageSize)
	}

	// Step 4: stop-and-copy (downtime window begins). Enclave workers are
	// already parked in their in-enclave spin regions; stop the rest.
	downStart := time.Now()
	vm.OS.StopPlain()
	final := vm.Mem.CollectDirty()
	for _, p := range final {
		vm.Mem.CopyPage(p, page)
		tvm.Mem.ApplyPage(p, page)
	}
	l.transfer(int64(len(final))*PageSize + 64*1024 /* device state */)

	// Step 5: migrate each enclave; the target guest OS rebuilds them one
	// by one (the paper: "the enclaves are rebuilt one by one").
	restoreStart := time.Now()
	for _, p := range procs {
		if err := migrateEnclaveProcess(p, blobs[p.Name], tvm, opts); err != nil {
			vm.OS.CancelMigration()
			return nil, nil, fmt.Errorf("vmm: migrate enclave %s: %w", p.Name, err)
		}
		// Control-protocol traffic (quote, verdict, DH, sealed key).
		l.transfer(1024)
	}
	if len(procs) > 0 {
		stats.EnclaveRestoreTime = time.Since(restoreStart)
	}

	// Step 6: resume on the target.
	for _, tp := range tvm.OS.Processes() {
		tp.start()
	}
	stats.Downtime = time.Since(downStart) + stats.EnclaveDumpTime
	stats.TotalTime = time.Since(start)
	stats.TransferredBytes = l.total()

	// The source VM is gone; its enclaves have self-destroyed, so their
	// parked host loops exit with ErrDestroyed and the EPC can be freed.
	vm.dead.Store(true)
	for _, p := range procs {
		p.Stop()
		_ = destroyWithRetry(p)
	}
	return tvm, stats, nil
}

// migrateEnclaveProcess runs one enclave's secure migration into the target
// VM over an in-process control channel (the checkpoint bytes themselves
// already travelled — and were paid for — in the guest-memory stream).
func migrateEnclaveProcess(p *Process, blob []byte, tvm *VM, opts *core.Options) error {
	t1, t2 := core.NewPipe()
	type inResult struct {
		proc *Process
		err  error
	}
	done := make(chan inResult, 1)
	go func() {
		tp, _, err := tvm.OS.ReceiveEnclaveProcess(p.Name, p.Image, t2, opts, p.workload)
		done <- inResult{proc: tp, err: err}
	}()
	if _, err := core.MigrateOutPrepared(p.RT, blob, t1, opts); err != nil {
		return err
	}
	res := <-done
	return res.err
}

// destroyWithRetry frees the source enclave's EPC after its worker threads
// have observed self-destruction.
func destroyWithRetry(p *Process) error {
	var err error
	for i := 0; i < 100; i++ {
		if err = p.RT.Destroy(); err == nil {
			return nil
		}
		time.Sleep(time.Millisecond)
	}
	return err
}

// ReceiveEnclaveProcess is the target guest OS half of one enclave
// migration: allocate a shared region in this VM's memory, rebuild the
// image, restore, and register the process (its workload loops start when
// the VM resumes).
func (o *OS) ReceiveEnclaveProcess(name, image string, t core.Transport, opts *core.Options, workload WorkloadFunc) (*Process, *core.Incoming, error) {
	dep, ok := o.reg.Lookup(image)
	if !ok {
		return nil, nil, fmt.Errorf("vmm: image %q not deployed in guest %s", image, o.Name)
	}
	size := uint64(enclave.SharedSizeFor(appLayout(dep.App)))
	base, err := o.allocShared(size)
	if err != nil {
		return nil, nil, err
	}
	region, err := o.mem.Region(base, size)
	if err != nil {
		return nil, nil, err
	}
	inOpts := *opts
	inOpts.BuildOptions = append(append([]enclave.BuildOption(nil), opts.BuildOptions...), enclave.WithShared(region))
	inc, err := core.MigrateIn(o.host, o.reg, t, &inOpts)
	if err != nil {
		return nil, nil, err
	}
	// Drain in-flight ecall completions; the workload loops reclaim the
	// workers afterwards.
	go func() {
		for range inc.Results {
		}
	}()
	p := &Process{
		Name:       name,
		Image:      image,
		RT:         inc.Runtime,
		workload:   workload,
		sharedBase: base,
		sharedSize: size,
	}
	o.mu.Lock()
	o.procs = append(o.procs, p)
	o.mu.Unlock()
	return p, inc, nil
}

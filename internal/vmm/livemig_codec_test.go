package vmm

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/telemetry"
)

// TestLiveMigrateCodecs migrates the same guest memory image under each
// page codec and checks bit-exact arrival plus the codec's byte accounting:
// logical bytes partition TransferredBytes, wire bytes are real, and the
// delta codec actually saves wire bytes on a guest with zero and sparse
// pages.
func TestLiveMigrateCodecs(t *testing.T) {
	for _, codec := range []PageCodec{CodecFramedDelta, CodecFramed, CodecGob} {
		t.Run(codec.String(), func(t *testing.T) {
			_, _, src, dst := newCloud(t)
			vm, err := src.CreateVM(VMConfig{Name: "vm-" + codec.String(), MemPages: 512, VCPUs: 2, EPCQuota: 256})
			if err != nil {
				t.Fatal(err)
			}
			// Deterministic guest image: dense random pages, sparse pages,
			// and untouched zero pages — the mix delta encoding targets.
			rng := rand.New(rand.NewSource(7))
			page := make([]byte, PageSize)
			for p := 0; p < vm.Config.MemPages; p += 3 {
				rng.Read(page)
				if err := vm.Mem.Write(uint64(p)*PageSize, page); err != nil {
					t.Fatal(err)
				}
			}
			for p := 1; p < vm.Config.MemPages; p += 7 {
				if err := vm.Mem.Write(uint64(p)*PageSize+128, []byte("sparse dirty window")); err != nil {
					t.Fatal(err)
				}
			}
			want := make([]byte, vm.Mem.Bytes())
			if err := vm.Mem.Read(0, want); err != nil {
				t.Fatal(err)
			}

			met := telemetry.NewMetrics()
			tvm, stats, err := LiveMigrate(vm, dst, &LiveMigrationConfig{
				BandwidthBps: 1e9,
				PageCodec:    codec,
				Metrics:      met,
			})
			if err != nil {
				t.Fatal(err)
			}
			got := make([]byte, tvm.Mem.Bytes())
			if err := tvm.Mem.Read(0, got); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, want) {
				for p := 0; p < vm.Config.MemPages; p++ {
					a, b := want[p*PageSize:(p+1)*PageSize], got[p*PageSize:(p+1)*PageSize]
					if !bytes.Equal(a, b) {
						t.Fatalf("page %d differs after %s migration", p, codec)
					}
				}
			}

			if sum := stats.BulkBytes + stats.PreCopyBytes + stats.StopCopyBytes + stats.EnclaveCtlBytes; sum != stats.TransferredBytes {
				t.Fatalf("phase bytes %d do not partition TransferredBytes %d", sum, stats.TransferredBytes)
			}
			if stats.WireBytes <= 0 || stats.BulkWireBytes <= 0 {
				t.Fatalf("missing wire accounting: %+v", stats)
			}
			if wsum := stats.BulkWireBytes + stats.PreCopyWireBytes + stats.StopCopyWireBytes + stats.EnclaveCtlBytes; wsum != stats.WireBytes {
				t.Fatalf("wire phase bytes %d do not partition WireBytes %d", wsum, stats.WireBytes)
			}
			switch codec {
			case CodecFramedDelta:
				if stats.DeltaFrames == 0 || stats.DeltaSavedBytes <= 0 {
					t.Fatalf("delta codec sent no deltas: %+v", stats)
				}
				// Zero and sparse pages compress, so the wire total must
				// beat the logical total.
				if stats.WireBytes >= stats.TransferredBytes {
					t.Fatalf("delta codec saved nothing: wire %d vs logical %d", stats.WireBytes, stats.TransferredBytes)
				}
				if met.Ratio("vmm.delta.hitrate").Total() == 0 {
					t.Fatal("delta hit-rate instrument never observed")
				}
			case CodecFramed, CodecGob:
				if stats.DeltaFrames != 0 || stats.DeltaSavedBytes != 0 {
					t.Fatalf("%s codec reported delta frames: %+v", codec, stats)
				}
			}
			if met.Counter("vmm.wire.bytes").Value() <= 0 {
				t.Fatal("vmm.wire.bytes counter never incremented")
			}
		})
	}
}

// TestLiveMigrateCompressRaw migrates the same guest twice — with and
// without the CompressRaw knob — and checks the compressed run arrives
// bit-exact, books its rawz frames and flate savings in the ledger, and
// actually spends fewer wire bytes than the plain run.
func TestLiveMigrateCompressRaw(t *testing.T) {
	run := func(t *testing.T, compress bool) (*VM, *LiveMigrationStats, []byte) {
		_, _, src, dst := newCloud(t)
		vm, err := src.CreateVM(VMConfig{Name: "vm-flate", MemPages: 512, VCPUs: 2, EPCQuota: 256})
		if err != nil {
			t.Fatal(err)
		}
		// Dense-but-redundant pages: every byte non-zero, so the XOR delta
		// against the zero baseline finds no runs to elide and passes the
		// pages through raw — while DEFLATE collapses the repetition. This
		// is exactly the residue the CompressRaw knob targets.
		page := bytes.Repeat([]byte("redundant-guest-structure.v1####"), PageSize/32)
		for p := 0; p < vm.Config.MemPages; p += 2 {
			if err := vm.Mem.Write(uint64(p)*PageSize, page[:PageSize]); err != nil {
				t.Fatal(err)
			}
		}
		want := make([]byte, vm.Mem.Bytes())
		if err := vm.Mem.Read(0, want); err != nil {
			t.Fatal(err)
		}
		tvm, stats, err := LiveMigrate(vm, dst, &LiveMigrationConfig{
			BandwidthBps: 1e9,
			CompressRaw:  compress,
		})
		if err != nil {
			t.Fatal(err)
		}
		return tvm, stats, want
	}

	tvm, plain, _ := run(t, false)
	if plain.RawzFrames != 0 || plain.FlateSavedBytes != 0 {
		t.Fatalf("knob off but rawz ledger populated: %+v", plain)
	}
	_ = tvm

	tvm, zstats, want := run(t, true)
	got := make([]byte, tvm.Mem.Bytes())
	if err := tvm.Mem.Read(0, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("compressed migration corrupted guest memory")
	}
	if zstats.RawzFrames == 0 || zstats.FlateSavedBytes <= 0 {
		t.Fatalf("knob on but no rawz frames booked: %+v", zstats)
	}
	// Identical logical work, cheaper wire: same pages shipped...
	if zstats.TransferredBytes != plain.TransferredBytes {
		t.Fatalf("logical bytes differ: %d vs %d", zstats.TransferredBytes, plain.TransferredBytes)
	}
	// ...for measurably fewer encoded bytes.
	if zstats.WireBytes >= plain.WireBytes {
		t.Fatalf("compression saved nothing: wire %d vs %d", zstats.WireBytes, plain.WireBytes)
	}
	if wsum := zstats.BulkWireBytes + zstats.PreCopyWireBytes + zstats.StopCopyWireBytes + zstats.EnclaveCtlBytes; wsum != zstats.WireBytes {
		t.Fatalf("wire phase bytes %d do not partition WireBytes %d", wsum, zstats.WireBytes)
	}
}

// TestApplyPageDeltasBounds: a delta aimed outside guest memory must be
// rejected, not install or panic.
func TestApplyPageDeltasBounds(t *testing.T) {
	g := NewGuestMemory(4)
	if err := g.ApplyPageDeltas([]int{7}, []int{0}, nil); err == nil {
		t.Fatal("out-of-range delta page accepted")
	}
	if err := g.ApplyPageDeltas([]int{-1}, []int{0}, nil); err == nil {
		t.Fatal("negative delta page accepted")
	}
	// A valid empty delta is a no-op.
	if err := g.ApplyPageDeltas([]int{2}, []int{0}, nil); err != nil {
		t.Fatal(err)
	}
}

// TestChunkSenderDeltaRounds drives the chunk sender directly across
// simulated pre-copy rounds with random re-dirty patterns and checks the
// target arrives bit-exact — the delta-correctness property at the vmm
// layer (cache baseline vs FIFO application).
func TestChunkSenderDeltaRounds(t *testing.T) {
	const pages = 64
	rng := rand.New(rand.NewSource(11))
	srcMem := NewGuestMemory(pages)
	dstMem := NewGuestMemory(pages)
	cfg := &LiveMigrationConfig{BandwidthBps: 1e9}
	snd := newChunkSender(dstMem, cfg, nil)
	var logical, wire int64

	buf := make([]byte, 256)
	// Round 0: everything; later rounds: random small re-dirty windows.
	for round := 0; round < 5; round++ {
		var dirty []int
		if round == 0 {
			for p := 0; p < pages; p += 2 {
				rng.Read(buf)
				if err := srcMem.Write(uint64(p)*PageSize+uint64(rng.Intn(PageSize-256)), buf); err != nil {
					t.Fatal(err)
				}
			}
			srcMem.MarkAllDirty()
			dirty = srcMem.CollectDirty()
		} else {
			for i := 0; i < 10; i++ {
				p := rng.Intn(pages)
				rng.Read(buf[:64])
				if err := srcMem.Write(uint64(p)*PageSize+uint64(rng.Intn(PageSize-64)), buf[:64]); err != nil {
					t.Fatal(err)
				}
			}
			dirty = srcMem.CollectDirty()
		}
		snd.send(srcMem, dirty, 16, &logical, &wire, telemetry.Context{})
	}
	if err := snd.drain(); err != nil {
		t.Fatal(err)
	}
	want := make([]byte, srcMem.Bytes())
	got := make([]byte, dstMem.Bytes())
	if err := srcMem.Read(0, want); err != nil {
		t.Fatal(err)
	}
	if err := dstMem.Read(0, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want, got) {
		t.Fatal("target memory diverged from source after delta rounds")
	}
	if snd.deltaFrames == 0 {
		t.Fatal("re-dirty rounds produced no delta frames")
	}
	if wire <= 0 || wire >= logical {
		t.Fatalf("wire %d vs logical %d: deltas saved nothing", wire, logical)
	}
}

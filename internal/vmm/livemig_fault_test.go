package vmm

import (
	"fmt"
	"runtime"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/testapps"
)

// TestLiveMigrateEnclaveFaultUnwinds (regression for the receive-goroutine
// leak): a transport fault in one enclave's control channel must unwind the
// whole VM migration — the source VM keeps running with every enclave
// resumed, the half-built target VM is torn down, and no goroutine stays
// parked on the dead channel. failAt indexes the source half's transport
// operations (1 = first image send, 3 = the checkpoint's bulk frame, 5 =
// the channel message after the hello receive) — all before key release,
// so the migration is still fully cancellable.
func TestLiveMigrateEnclaveFaultUnwinds(t *testing.T) {
	for _, failAt := range []int{1, 3, 5} {
		t.Run(fmt.Sprintf("failAt=%d", failAt), func(t *testing.T) {
			maxGoroutines := runtime.NumGoroutine() + 4

			_, owner, src, dst := newCloud(t)
			deployCounter(t, owner, src, dst)
			vm, err := src.CreateVM(VMConfig{Name: "vm-fault", MemPages: 1024, VCPUs: 4, EPCQuota: 2048})
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 2; i++ {
				if _, err := vm.OS.LaunchEnclaveProcess(fmt.Sprintf("enc-%d", i), "counter", owner, counterWorkload); err != nil {
					t.Fatal(err)
				}
			}
			time.Sleep(2 * time.Millisecond)

			cfg := &LiveMigrationConfig{
				BandwidthBps: 1e9,
				TransportFactory: func(name string, s, d core.Transport) (core.Transport, core.Transport) {
					if name == "enc-0" {
						return core.NewFaultyTransport(s, failAt, true), d
					}
					return s, d
				},
			}
			tvm, stats, err := LiveMigrate(vm, dst, cfg)
			if err == nil {
				t.Fatal("migration succeeded despite injected fault")
			}
			if tvm != nil || stats != nil {
				t.Fatal("failed migration returned a target VM")
			}

			// The source VM is intact: still registered, not dead, and every
			// enclave resumed — their counters answer and keep counting.
			if vm.Dead() {
				t.Fatal("source VM marked dead after failed migration")
			}
			vm.OS.StopAll()
			for _, p := range vm.OS.Processes() {
				res, err := p.RT.ECall(0, testapps.CounterGet)
				if err != nil {
					t.Fatalf("%s after failed migration: %v", p.Name, err)
				}
				if res[0] == 0 {
					t.Fatalf("%s: no progress before the failed migration", p.Name)
				}
			}

			// The half-built target VM was removed from the node: its name
			// and EPC grant are free again.
			probe, err := dst.CreateVM(vm.Config)
			if err != nil {
				t.Fatalf("target VM not released after failed migration: %v", err)
			}
			if err := probe.Shutdown(); err != nil {
				t.Fatal(err)
			}

			// A second migration attempt from the same source succeeds.
			for _, p := range vm.OS.Processes() {
				p.start()
			}
			tvm2, _, err := LiveMigrate(vm, dst, &LiveMigrationConfig{BandwidthBps: 1e9})
			if err != nil {
				t.Fatalf("retry migration after fault: %v", err)
			}
			tvm2.OS.StopAll()
			for _, p := range tvm2.OS.Processes() {
				if res, err := p.RT.ECall(0, testapps.CounterGet); err != nil || res[0] == 0 {
					t.Fatalf("%s after retry migration: %v %v", p.Name, res, err)
				}
			}
			if err := tvm2.Shutdown(); err != nil {
				t.Fatal(err)
			}

			// Nothing is left parked on the dead control channels.
			deadline := time.Now().Add(5 * time.Second)
			for runtime.NumGoroutine() > maxGoroutines {
				if time.Now().After(deadline) {
					buf := make([]byte, 1<<20)
					t.Fatalf("goroutine leak: %d running, want <= %d\n%s",
						runtime.NumGoroutine(), maxGoroutines, buf[:runtime.Stack(buf, true)])
				}
				time.Sleep(10 * time.Millisecond)
			}
		})
	}
}

// TestLiveMigrateTargetCollision: the earliest error path — the target node
// already hosts a VM with that name — leaves the source completely
// untouched.
func TestLiveMigrateTargetCollision(t *testing.T) {
	_, owner, src, dst := newCloud(t)
	deployCounter(t, owner, src, dst)
	vm, err := src.CreateVM(VMConfig{Name: "vm-dup", MemPages: 512, VCPUs: 2, EPCQuota: 1024})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := vm.OS.LaunchEnclaveProcess("enc", "counter", owner, counterWorkload); err != nil {
		t.Fatal(err)
	}
	if _, err := dst.CreateVM(VMConfig{Name: "vm-dup", MemPages: 512}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := LiveMigrate(vm, dst, &LiveMigrationConfig{BandwidthBps: 1e9}); err == nil {
		t.Fatal("migration into an occupied VM slot succeeded")
	}
	vm.OS.StopAll()
	for _, p := range vm.OS.Processes() {
		if _, err := p.RT.ECall(0, testapps.CounterGet); err != nil {
			t.Fatalf("source enclave after collision: %v", err)
		}
	}
	if err := vm.Shutdown(); err != nil {
		t.Fatal(err)
	}
}

package vmm

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/attest"
	"repro/internal/core"
	"repro/internal/enclave"
	"repro/internal/testapps"
)

// counterWorkload keeps a worker busy incrementing the enclave counter in
// batches, tolerating the disruptions a migration causes.
func counterWorkload(rt *enclave.Runtime, worker int, stop <-chan struct{}) {
	for {
		select {
		case <-stop:
			return
		default:
		}
		_, err := rt.ECall(worker, testapps.CounterRun, 2000)
		switch {
		case err == nil:
		case errors.Is(err, enclave.ErrDestroyed):
			return
		case errors.Is(err, enclave.ErrWorkerBusy):
			time.Sleep(100 * time.Microsecond)
		default:
			return
		}
	}
}

func newCloud(t testing.TB) (*attest.Service, *core.Owner, *Node, *Node) {
	t.Helper()
	service, err := attest.NewService()
	if err != nil {
		t.Fatal(err)
	}
	owner, err := core.NewOwner(service)
	if err != nil {
		t.Fatal(err)
	}
	src, err := NewNode(NodeConfig{Name: "node-a", EPCFrames: 8192}, service)
	if err != nil {
		t.Fatal(err)
	}
	dst, err := NewNode(NodeConfig{Name: "node-b", EPCFrames: 8192}, service)
	if err != nil {
		t.Fatal(err)
	}
	return service, owner, src, dst
}

func deployCounter(t testing.TB, owner *core.Owner, nodes ...*Node) {
	t.Helper()
	app := testapps.CounterApp(2)
	owner.ConfigureApp(app)
	dep := core.NewDeployment(app, owner)
	for _, n := range nodes {
		n.Registry.Add(dep)
	}
}

func TestLiveMigrateVMWithEnclaves(t *testing.T) {
	service, owner, src, dst := newCloud(t)
	_ = service
	deployCounter(t, owner, src, dst)

	vm, err := src.CreateVM(VMConfig{Name: "vm1", MemPages: 2048, VCPUs: 4, EPCQuota: 2048})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := vm.OS.LaunchPlainProcess("webserver", 128, 200*time.Microsecond); err != nil {
		t.Fatal(err)
	}
	const enclaves = 3
	for i := 0; i < enclaves; i++ {
		if _, err := vm.OS.LaunchEnclaveProcess(fmt.Sprintf("enc-%d", i), "counter", owner, counterWorkload); err != nil {
			t.Fatal(err)
		}
	}
	// Let the workloads make progress.
	time.Sleep(5 * time.Millisecond)

	tvm, stats, err := LiveMigrate(vm, dst, &LiveMigrationConfig{BandwidthBps: 1e9})
	if err != nil {
		t.Fatal(err)
	}
	if !vm.Dead() {
		t.Fatal("source VM still alive after migration")
	}
	if stats.EnclaveCount != enclaves {
		t.Fatalf("EnclaveCount = %d, want %d", stats.EnclaveCount, enclaves)
	}
	if stats.TransferredBytes < vm.Mem.Bytes() {
		t.Fatalf("transferred %d bytes, expected at least one full memory copy (%d)", stats.TransferredBytes, vm.Mem.Bytes())
	}
	if stats.EnclaveDumpTime <= 0 || stats.EnclaveRestoreTime <= 0 {
		t.Fatalf("missing enclave phase timings: %+v", stats)
	}
	if stats.Downtime <= 0 || stats.TotalTime < stats.Downtime {
		t.Fatalf("inconsistent timing: %+v", stats)
	}
	// Pipeline accounting: the per-phase byte counters partition the total,
	// and the overlap window never exceeds the dump it hides.
	if sum := stats.BulkBytes + stats.PreCopyBytes + stats.StopCopyBytes + stats.EnclaveCtlBytes; sum != stats.TransferredBytes {
		t.Fatalf("phase bytes %d do not partition TransferredBytes %d", sum, stats.TransferredBytes)
	}
	if stats.DumpPrecopyOverlap < 0 || stats.DumpPrecopyOverlap > stats.EnclaveDumpTime {
		t.Fatalf("overlap %v outside [0, dump %v]", stats.DumpPrecopyOverlap, stats.EnclaveDumpTime)
	}
	if len(stats.RoundDirtyPages) < 2 || stats.RoundDirtyPages[0] != vm.Config.MemPages {
		t.Fatalf("RoundDirtyPages = %v, want bulk round of %d pages first", stats.RoundDirtyPages, vm.Config.MemPages)
	}

	// The migrated enclaves are live and their state moved: counters keep
	// growing on the target.
	tvm.OS.StopAll()
	for _, p := range tvm.OS.Processes() {
		res, err := p.RT.ECall(0, testapps.CounterGet)
		if err != nil {
			t.Fatalf("%s: post-migration ecall: %v", p.Name, err)
		}
		if res[0] == 0 {
			t.Fatalf("%s: migrated counter is zero — state did not move", p.Name)
		}
	}
	if err := tvm.Shutdown(); err != nil {
		t.Fatal(err)
	}
}

// TestLiveMigrateSerialConfig pins the paper's serial Fig. 8 schedule behind
// the config knobs: no dump/pre-copy overlap is reported and the migration
// still lands intact.
func TestLiveMigrateSerialConfig(t *testing.T) {
	_, owner, src, dst := newCloud(t)
	deployCounter(t, owner, src, dst)

	vm, err := src.CreateVM(VMConfig{Name: "vm-serial", MemPages: 2048, VCPUs: 4, EPCQuota: 2048})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := vm.OS.LaunchEnclaveProcess(fmt.Sprintf("enc-%d", i), "counter", owner, counterWorkload); err != nil {
			t.Fatal(err)
		}
	}
	time.Sleep(2 * time.Millisecond)

	tvm, stats, err := LiveMigrate(vm, dst, &LiveMigrationConfig{
		BandwidthBps:       1e9,
		SerialDump:         true,
		SerialChannelSetup: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.DumpPrecopyOverlap != 0 {
		t.Fatalf("serial schedule reported overlap %v", stats.DumpPrecopyOverlap)
	}
	if stats.EnclaveDumpTime <= 0 || stats.EnclaveRestoreTime <= 0 {
		t.Fatalf("missing enclave phase timings: %+v", stats)
	}
	tvm.OS.StopAll()
	for _, p := range tvm.OS.Processes() {
		res, err := p.RT.ECall(0, testapps.CounterGet)
		if err != nil {
			t.Fatalf("%s: post-migration ecall: %v", p.Name, err)
		}
		if res[0] == 0 {
			t.Fatalf("%s: migrated counter is zero", p.Name)
		}
	}
	if err := tvm.Shutdown(); err != nil {
		t.Fatal(err)
	}
}

func TestLiveMigrateVMWithoutEnclaves(t *testing.T) {
	_, _, src, dst := newCloud(t)
	vm, err := src.CreateVM(VMConfig{Name: "vm-plain", MemPages: 2048})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := vm.OS.LaunchPlainProcess("app", 256, 100*time.Microsecond); err != nil {
		t.Fatal(err)
	}
	time.Sleep(2 * time.Millisecond)
	tvm, stats, err := LiveMigrate(vm, dst, &LiveMigrationConfig{BandwidthBps: 1e9})
	if err != nil {
		t.Fatal(err)
	}
	if stats.EnclaveCount != 0 || stats.EnclaveDumpTime != 0 {
		t.Fatalf("unexpected enclave stats for plain VM: %+v", stats)
	}
	if err := tvm.Shutdown(); err != nil {
		t.Fatal(err)
	}
}

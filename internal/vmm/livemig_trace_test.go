package vmm

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/telemetry"
)

// traceVM builds a small enclave-carrying VM and migrates it with a live
// tracer attached, returning the tracer for shape assertions.
func traceVM(t *testing.T, serial bool) (*telemetry.Tracer, *LiveMigrationStats) {
	t.Helper()
	_, owner, src, dst := newCloud(t)
	deployCounter(t, owner, src, dst)
	vm, err := src.CreateVM(VMConfig{Name: "vm-trace", MemPages: 2048, VCPUs: 4, EPCQuota: 2048})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := vm.OS.LaunchEnclaveProcess(fmt.Sprintf("enc-%d", i), "counter", owner, counterWorkload); err != nil {
			t.Fatal(err)
		}
	}
	time.Sleep(2 * time.Millisecond)

	tr := telemetry.New()
	tvm, stats, err := LiveMigrate(vm, dst, &LiveMigrationConfig{
		BandwidthBps:       250e6, // slow link so the dump/pre-copy interleaving is visible
		SerialDump:         serial,
		SerialChannelSetup: serial,
		Tracer:             tr,
		Metrics:            telemetry.NewMetrics(),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		tvm.OS.StopAll()
		if err := tvm.Shutdown(); err != nil {
			t.Fatal(err)
		}
	})
	return tr, stats
}

// interval returns the [start, end] of the single span with this name.
func interval(t *testing.T, tr *telemetry.Tracer, name string) (time.Duration, time.Duration) {
	t.Helper()
	recs := tr.ByName(name)
	if len(recs) != 1 {
		t.Fatalf("want exactly one %q span, got %d", name, len(recs))
	}
	return recs[0].Start, recs[0].Start + recs[0].Dur
}

// TestLiveMigrateTraceShape checks that the pipelined engine's trace tells
// the pipelining story: the enclave dump span runs on its own track and
// overlaps the memory transfer, every expected phase span is present, and
// no span leaks open.
func TestLiveMigrateTraceShape(t *testing.T) {
	tr, stats := traceVM(t, false)

	if n := tr.ActiveCount(); n != 0 {
		t.Fatalf("%d spans still open after migration", n)
	}
	// vmm.dumpwait is deliberately absent: it only appears when the dump
	// outlasts pre-copy convergence, which a healthy pipeline avoids.
	for _, name := range []string{
		"vmm.livemigrate", "vmm.dump", "vmm.bulk", "vmm.precopy.round",
		"vmm.downtime", "vmm.stopcopy", "vmm.commit",
		"vmm.enclave.channel", "vmm.enclave.commit",
		"core.prepare", "core.dump", "core.channel", "core.keyrelease",
		"core.restore", "core.target.prepare", "core.target.finish",
	} {
		if len(tr.ByName(name)) == 0 {
			t.Errorf("trace is missing span %q", name)
		}
	}

	root := tr.ByName("vmm.livemigrate")[0]
	if root.Parent != 0 {
		t.Fatalf("vmm.livemigrate should be a root span, parent=%d", root.Parent)
	}
	if stats.TotalTime != root.Dur {
		t.Fatalf("TotalTime %v is not derived from the root span (%v)", stats.TotalTime, root.Dur)
	}

	dump := tr.ByName("vmm.dump")[0]
	if dump.Parent != root.ID {
		t.Fatalf("vmm.dump parent = %d, want root %d", dump.Parent, root.ID)
	}
	if dump.Track == root.Track {
		t.Fatal("pipelined vmm.dump should be forked onto its own track")
	}
	// The pipelining claim itself: the dump interval overlaps the memory
	// transfer (bulk round + pre-copy rounds) instead of preceding it.
	bulkStart, bulkEnd := interval(t, tr, "vmm.bulk")
	xferEnd := bulkEnd
	for _, r := range tr.ByName("vmm.precopy.round") {
		if end := r.Start + r.Dur; end > xferEnd {
			xferEnd = end
		}
	}
	if dump.Start >= xferEnd || dump.Start+dump.Dur <= bulkStart {
		t.Fatalf("vmm.dump [%v,%v] does not overlap the transfer [%v,%v]",
			dump.Start, dump.Start+dump.Dur, bulkStart, xferEnd)
	}

	down := tr.ByName("vmm.downtime")[0]
	if stats.Downtime < down.Dur {
		t.Fatalf("Downtime %v below the downtime span %v", stats.Downtime, down.Dur)
	}
}

// TestLiveMigrateTraceSerial pins the serial Fig. 8 schedule's trace: the
// dump is a same-track child that fully precedes the bulk transfer.
func TestLiveMigrateTraceSerial(t *testing.T) {
	tr, _ := traceVM(t, true)

	if n := tr.ActiveCount(); n != 0 {
		t.Fatalf("%d spans still open after migration", n)
	}
	root := tr.ByName("vmm.livemigrate")[0]
	dump := tr.ByName("vmm.dump")[0]
	if dump.Track != root.Track {
		t.Fatal("serial vmm.dump should share the root track (Child, not Fork)")
	}
	bulkStart, _ := interval(t, tr, "vmm.bulk")
	if dumpEnd := dump.Start + dump.Dur; dumpEnd > bulkStart {
		t.Fatalf("serial schedule: dump ends at %v, after bulk transfer starts at %v", dumpEnd, bulkStart)
	}
}

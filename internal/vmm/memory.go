// Package vmm provides the virtualization substrate of the reproduction:
// guest physical memory with dirty-page tracking, a hypervisor that manages
// physical EPC and grants it to guests on demand (paper Sec. VI-A), a guest
// OS with the SGX driver and enclave-hosting processes (Sec. VI-B), and the
// pre-copy live VM migration engine that the paper extends with enclave
// migration (Sec. VI-D, Fig. 8).
package vmm

import (
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/sgx"
)

// PageSize is the guest page size (matches the EPC page size and the bulk
// wire codec's framing granularity).
const PageSize = core.PageSize

// GuestMemory is a VM's guest-physical memory with per-page dirty tracking,
// the substrate of iterative pre-copy migration.
type GuestMemory struct {
	mu    sync.RWMutex
	data  []byte // guarded by mu
	pages int
	dirty []bool // guarded by mu
}

// NewGuestMemory allocates guest memory of the given page count.
func NewGuestMemory(pages int) *GuestMemory {
	return &GuestMemory{
		data:  make([]byte, pages*PageSize),
		pages: pages,
		dirty: make([]bool, pages),
	}
}

// Pages returns the page count.
func (g *GuestMemory) Pages() int { return g.pages }

// Bytes returns the memory size in bytes.
func (g *GuestMemory) Bytes() int64 { return int64(g.pages) * PageSize }

// Write stores guest memory and marks the touched pages dirty.
func (g *GuestMemory) Write(addr uint64, b []byte) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	if addr+uint64(len(b)) > uint64(len(g.data)) {
		return fmt.Errorf("vmm: guest write out of range")
	}
	copy(g.data[addr:], b)
	for p := int(addr / PageSize); p <= int((addr+uint64(len(b))-1)/PageSize) && len(b) > 0; p++ {
		g.dirty[p] = true
	}
	return nil
}

// Read loads guest memory.
func (g *GuestMemory) Read(addr uint64, b []byte) error {
	g.mu.RLock()
	defer g.mu.RUnlock()
	if addr+uint64(len(b)) > uint64(len(g.data)) {
		return fmt.Errorf("vmm: guest read out of range")
	}
	copy(b, g.data[addr:])
	return nil
}

// CopyPage reads page p into dst (len >= PageSize).
func (g *GuestMemory) CopyPage(p int, dst []byte) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	copy(dst, g.data[p*PageSize:(p+1)*PageSize])
}

// ApplyPage installs migrated page content without marking it dirty (used on
// the migration target).
func (g *GuestMemory) ApplyPage(p int, src []byte) {
	g.mu.Lock()
	defer g.mu.Unlock()
	copy(g.data[p*PageSize:(p+1)*PageSize], src)
}

// CopyPages reads the given pages into dst (len(pages)*PageSize bytes) under
// a single lock acquisition — the batch read side of chunked migration
// transfers.
func (g *GuestMemory) CopyPages(pages []int, dst []byte) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	for i, p := range pages {
		copy(dst[i*PageSize:(i+1)*PageSize], g.data[p*PageSize:(p+1)*PageSize])
	}
}

// ApplyPages installs a batch of migrated pages (the chunk layout CopyPages
// produces) without marking them dirty.
func (g *GuestMemory) ApplyPages(pages []int, src []byte) {
	g.mu.Lock()
	defer g.mu.Unlock()
	for i, p := range pages {
		copy(g.data[p*PageSize:(p+1)*PageSize], src[i*PageSize:(i+1)*PageSize])
	}
}

// ApplyPageDeltas installs a batch of migrated XOR+RLE page deltas (the
// FrameDelta layout: sizes[i] bytes of delta per page, concatenated in
// page order) under one lock, XORing each onto the page's current content
// without marking it dirty. Correct only when this memory holds exactly
// the content the sender's delta baseline assumed — FIFO application of
// the migration stream guarantees that.
func (g *GuestMemory) ApplyPageDeltas(pages, sizes []int, src []byte) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	off := 0
	for i, p := range pages {
		if p < 0 || p >= g.pages {
			return fmt.Errorf("vmm: delta for page %d outside guest memory", p)
		}
		sz := sizes[i]
		if err := core.ApplyXORDelta(g.data[p*PageSize:(p+1)*PageSize], src[off:off+sz]); err != nil {
			return fmt.Errorf("vmm: apply delta to page %d: %w", p, err)
		}
		off += sz
	}
	return nil
}

// CollectDirty returns the currently dirty pages and clears their bits.
func (g *GuestMemory) CollectDirty() []int {
	g.mu.Lock()
	defer g.mu.Unlock()
	var out []int
	for p, d := range g.dirty {
		if d {
			out = append(out, p)
			g.dirty[p] = false
		}
	}
	return out
}

// DirtyCount reports how many pages are dirty without clearing them.
func (g *GuestMemory) DirtyCount() int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	n := 0
	for _, d := range g.dirty {
		if d {
			n++
		}
	}
	return n
}

// MarkAllDirty flags every page (migration round 0).
func (g *GuestMemory) MarkAllDirty() {
	g.mu.Lock()
	defer g.mu.Unlock()
	for p := range g.dirty {
		g.dirty[p] = true
	}
}

// Region carves an sgx.OutsideMemory window out of guest memory; enclaves'
// untrusted shared regions live here, so checkpoint dumps dirty VM pages and
// ride the ordinary migration stream.
type Region struct {
	mem  *GuestMemory
	base uint64
	size uint64
}

var _ sgx.OutsideMemory = (*Region)(nil)

// Region returns a window [base, base+size).
func (g *GuestMemory) Region(base, size uint64) (*Region, error) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	if base+size > uint64(len(g.data)) {
		return nil, fmt.Errorf("vmm: region out of range")
	}
	return &Region{mem: g, base: base, size: size}, nil
}

// Load implements sgx.OutsideMemory.
func (r *Region) Load(off uint64, b []byte) error {
	if off+uint64(len(b)) > r.size {
		return fmt.Errorf("vmm: region read out of range")
	}
	return r.mem.Read(r.base+off, b)
}

// Store implements sgx.OutsideMemory.
func (r *Region) Store(off uint64, b []byte) error {
	if off+uint64(len(b)) > r.size {
		return fmt.Errorf("vmm: region write out of range")
	}
	return r.mem.Write(r.base+off, b)
}

// Size implements sgx.OutsideMemory.
func (r *Region) Size() uint64 { return r.size }

package vmm

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/attest"
	"repro/internal/core"
	"repro/internal/sgx"
)

// Node is one physical machine in the cloud: an SGX machine with its
// hypervisor, the deployments it can host, and the attestation plumbing.
type Node struct {
	Name     string
	Machine  *sgx.Machine
	HV       *Hypervisor
	Registry *core.Registry
	Service  *attest.Service

	mu  sync.Mutex
	vms map[string]*VM // guarded by mu
}

// NodeConfig sizes a node.
type NodeConfig struct {
	Name      string
	EPCFrames int // physical EPC frames (default 4096)
	Quantum   int // machine preemption quantum in program steps
}

// NewNode boots a node and registers its attestation key with the service.
func NewNode(cfg NodeConfig, service *attest.Service) (*Node, error) {
	if cfg.Quantum == 0 {
		cfg.Quantum = 2000
	}
	m, err := sgx.NewMachine(sgx.Config{Name: cfg.Name, EPCFrames: cfg.EPCFrames, Quantum: cfg.Quantum})
	if err != nil {
		return nil, err
	}
	service.RegisterMachine(m.AttestationPublic())
	return &Node{
		Name:     cfg.Name,
		Machine:  m,
		HV:       NewHypervisor(m),
		Registry: core.NewRegistry(),
		Service:  service,
		vms:      make(map[string]*VM),
	}, nil
}

// VMConfig sizes a guest VM.
type VMConfig struct {
	Name     string
	MemPages int // guest memory in 4 KiB pages
	VCPUs    int
	EPCQuota int // virtual EPC frames
}

// VM is a guest virtual machine.
type VM struct {
	Name string
	Node *Node
	Mem  *GuestMemory
	OS   *OS

	Config VMConfig

	dead atomic.Bool
}

// CreateVM builds a VM on the node: guest memory, EPC grant, guest OS.
func (n *Node) CreateVM(cfg VMConfig) (*VM, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, dup := n.vms[cfg.Name]; dup {
		return nil, fmt.Errorf("vmm: VM %q already exists on %s", cfg.Name, n.Name)
	}
	if cfg.MemPages <= 0 {
		cfg.MemPages = 16 * 1024 // 64 MiB
	}
	if cfg.VCPUs <= 0 {
		cfg.VCPUs = 4
	}
	if cfg.EPCQuota <= 0 {
		cfg.EPCQuota = 1024
	}
	mem := NewGuestMemory(cfg.MemPages)
	source := n.HV.GrantEPC(cfg.Name, cfg.EPCQuota)
	os := NewOS(cfg.Name, n.Machine, source, n.HV.Dispatcher(), mem, n.Registry, cfg.VCPUs)
	vm := &VM{Name: cfg.Name, Node: n, Mem: mem, OS: os, Config: cfg}
	n.vms[cfg.Name] = vm
	return vm, nil
}

// Dead reports whether the VM has been migrated away or destroyed.
func (vm *VM) Dead() bool { return vm.dead.Load() }

// Shutdown stops all processes and destroys the VM's enclaves.
func (vm *VM) Shutdown() error {
	vm.OS.StopAll()
	for _, p := range vm.OS.Processes() {
		if !p.RT.Dead() {
			_ = core.Cancel(p.RT)
		}
		_ = p.RT.Destroy()
	}
	vm.dead.Store(true)
	vm.Node.mu.Lock()
	delete(vm.Node.vms, vm.Name)
	vm.Node.mu.Unlock()
	return vm.Node.HV.ReleaseVM(vm.Name)
}

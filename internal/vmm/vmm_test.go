package vmm

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/attest"
	"repro/internal/sgx"
)

func TestGuestMemoryDirtyTracking(t *testing.T) {
	g := NewGuestMemory(16)
	if got := g.CollectDirty(); len(got) != 0 {
		t.Fatalf("fresh memory dirty: %v", got)
	}
	if err := g.Write(PageSize+100, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	if err := g.Write(5*PageSize-2, []byte("span")); err != nil { // crosses 4->5
		t.Fatal(err)
	}
	dirty := g.CollectDirty()
	want := map[int]bool{1: true, 4: true, 5: true}
	if len(dirty) != 3 {
		t.Fatalf("dirty = %v", dirty)
	}
	for _, p := range dirty {
		if !want[p] {
			t.Fatalf("unexpected dirty page %d", p)
		}
	}
	// Collect clears.
	if got := g.CollectDirty(); len(got) != 0 {
		t.Fatalf("dirty after collect: %v", got)
	}
	// Reads don't dirty; ApplyPage doesn't dirty.
	buf := make([]byte, 8)
	if err := g.Read(PageSize+100, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf[:5], []byte("hello")) {
		t.Fatalf("read back %q", buf)
	}
	g.ApplyPage(7, make([]byte, PageSize))
	if got := g.CollectDirty(); len(got) != 0 {
		t.Fatalf("ApplyPage dirtied: %v", got)
	}
}

func TestGuestMemoryBounds(t *testing.T) {
	g := NewGuestMemory(2)
	if err := g.Write(2*PageSize-1, []byte{1, 2}); err == nil {
		t.Fatal("out-of-range write accepted")
	}
	if err := g.Read(2*PageSize, make([]byte, 1)); err == nil {
		t.Fatal("out-of-range read accepted")
	}
	if _, err := g.Region(PageSize, 2*PageSize); err == nil {
		t.Fatal("out-of-range region accepted")
	}
}

func TestRegionRoundTrip(t *testing.T) {
	g := NewGuestMemory(8)
	r, err := g.Region(2*PageSize, 3*PageSize)
	if err != nil {
		t.Fatal(err)
	}
	f := func(off uint16, data []byte) bool {
		o := uint64(off) % (2 * PageSize)
		if len(data) > PageSize {
			data = data[:PageSize]
		}
		if err := r.Store(o, data); err != nil {
			return false
		}
		got := make([]byte, len(data))
		if err := r.Load(o, got); err != nil {
			return false
		}
		return bytes.Equal(got, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
	// Region writes mark VM pages dirty (that's how checkpoints ride the
	// pre-copy stream).
	g.CollectDirty()
	if err := r.Store(0, []byte{1}); err != nil {
		t.Fatal(err)
	}
	if d := g.CollectDirty(); len(d) != 1 || d[0] != 2 {
		t.Fatalf("region write dirty set = %v", d)
	}
}

func TestHypervisorQuotas(t *testing.T) {
	m, err := sgx.NewMachine(sgx.Config{Name: "hv", EPCFrames: 64})
	if err != nil {
		t.Fatal(err)
	}
	hv := NewHypervisor(m)
	srcA := hv.GrantEPC("vm-a", 4)
	srcB := hv.GrantEPC("vm-b", 100) // overcommits physical
	for i := 0; i < 4; i++ {
		if _, err := srcA(); err != nil {
			t.Fatalf("vm-a grant %d: %v", i, err)
		}
	}
	if _, err := srcA(); !errors.Is(err, ErrQuotaReached) {
		t.Fatalf("vm-a beyond quota: %v", err)
	}
	// vm-b can take the remaining 60 physical frames, then hits exhaustion.
	granted := 0
	for {
		_, err := srcB()
		if err != nil {
			if !errors.Is(err, ErrEPCExhausted) {
				t.Fatalf("vm-b: %v", err)
			}
			break
		}
		granted++
	}
	if granted != 60 {
		t.Fatalf("vm-b granted %d frames, want 60", granted)
	}
	usage := hv.EPCUsage()
	if usage["vm-a"] != 4 || usage["vm-b"] != 60 {
		t.Fatalf("usage: %v", usage)
	}
}

func TestVMLifecycle(t *testing.T) {
	service, err := attest.NewService()
	if err != nil {
		t.Fatal(err)
	}
	node, err := NewNode(NodeConfig{Name: "n", EPCFrames: 2048}, service)
	if err != nil {
		t.Fatal(err)
	}
	vm, err := node.CreateVM(VMConfig{Name: "v1", MemPages: 512})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := node.CreateVM(VMConfig{Name: "v1"}); err == nil {
		t.Fatal("duplicate VM name accepted")
	}
	if _, err := vm.OS.LaunchPlainProcess("p", 16, 200*time.Microsecond); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for vm.Mem.DirtyCount() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("plain process never dirtied memory")
		}
		time.Sleep(time.Millisecond)
	}
	if err := vm.Shutdown(); err != nil {
		t.Fatal(err)
	}
	if !vm.Dead() {
		t.Fatal("shutdown VM not dead")
	}
	// Name is free again.
	if _, err := node.CreateVM(VMConfig{Name: "v1", MemPages: 128}); err != nil {
		t.Fatal(err)
	}
}

func TestGuestSharedAllocator(t *testing.T) {
	service, _ := attest.NewService()
	node, err := NewNode(NodeConfig{Name: "n2", EPCFrames: 2048}, service)
	if err != nil {
		t.Fatal(err)
	}
	vm, err := node.CreateVM(VMConfig{Name: "tiny", MemPages: 300})
	if err != nil {
		t.Fatal(err)
	}
	// Exhaust guest memory with plain windows.
	var lastErr error
	for i := 0; i < 100; i++ {
		if _, lastErr = vm.OS.LaunchPlainProcess("w", 64, time.Hour); lastErr != nil {
			break
		}
	}
	if lastErr == nil {
		t.Fatal("guest memory never exhausted")
	}
	_ = vm.Shutdown()
}

package workload

import (
	"crypto/des"
	"crypto/ed25519"
	"crypto/rc4"
	"math"
)

// The Fig. 9(b) real-world application analogues. The paper ports des, cr4
// (rc4), mcrypt, gnupg, libjpeg and libzip into enclaves and measures the
// overhead of migration support; these kernels exercise the same axes
// (block/stream crypto, public-key signing, DCT image coding, dictionary
// compression) with the working set in enclave memory.

// DES: DES-ECB over the buffer (crypto/des; retained, like the paper's DES
// usage, purely as a benchmark cipher).
func DES() *Kernel {
	key := []byte("8bytekey")
	return &Kernel{
		Name:       "des",
		HeapBytes:  64 * 1024,
		ChunkBytes: 8 * 1024,
		Init:       func(chunk int, buf []byte) { newLCG(uint64(chunk) + 53).fill(buf) },
		Transform: func(pass, chunk int, buf []byte) {
			block, err := des.NewCipher(key)
			if err != nil {
				return
			}
			for off := 0; off+8 <= len(buf); off += 8 {
				block.Encrypt(buf[off:off+8], buf[off:off+8])
			}
		},
	}
}

// RC4 is the paper's "cr4" workload: the RC4 stream cipher.
func RC4() *Kernel {
	return &Kernel{
		Name:       "rc4",
		HeapBytes:  64 * 1024,
		ChunkBytes: 8 * 1024,
		Init:       func(chunk int, buf []byte) { newLCG(uint64(chunk) + 59).fill(buf) },
		Transform: func(pass, chunk int, buf []byte) {
			key := []byte{byte(pass), byte(chunk), 3, 4, 5, 6, 7, 8}
			c, err := rc4.NewCipher(key)
			if err != nil {
				return
			}
			c.XORKeyStream(buf, buf)
		},
	}
}

// Mcrypt stands in for the mcrypt generic-cipher tool, using XTEA (a cipher
// mcrypt ships) implemented locally.
func Mcrypt() *Kernel {
	var key [4]uint32
	for i := range key {
		key[i] = uint32(0x9e3779b9 * (i + 1))
	}
	return &Kernel{
		Name:       "mcrypt",
		HeapBytes:  64 * 1024,
		ChunkBytes: 8 * 1024,
		Init:       func(chunk int, buf []byte) { newLCG(uint64(chunk) + 61).fill(buf) },
		Transform: func(pass, chunk int, buf []byte) {
			for off := 0; off+8 <= len(buf); off += 8 {
				v0, v1 := u32at(buf, off/4), u32at(buf, off/4+1)
				v0, v1 = xteaEncrypt(key, v0, v1)
				setU32(buf, off/4, v0)
				setU32(buf, off/4+1, v1)
			}
		},
	}
}

// xteaEncrypt runs the 32-round XTEA block encryption.
func xteaEncrypt(key [4]uint32, v0, v1 uint32) (uint32, uint32) {
	const delta = 0x9e3779b9
	var sum uint32
	for i := 0; i < 32; i++ {
		v0 += (((v1 << 4) ^ (v1 >> 5)) + v1) ^ (sum + key[sum&3])
		sum += delta
		v1 += (((v0 << 4) ^ (v0 >> 5)) + v0) ^ (sum + key[(sum>>11)&3])
	}
	return v0, v1
}

// GnuPG stands in for gnupg: Ed25519 signing of buffer chunks.
func GnuPG() *Kernel {
	seed := make([]byte, ed25519.SeedSize)
	for i := range seed {
		seed[i] = byte(i * 7)
	}
	priv := ed25519.NewKeyFromSeed(seed)
	return &Kernel{
		Name:       "gnupg",
		HeapBytes:  64 * 1024,
		ChunkBytes: 8 * 1024,
		Init:       func(chunk int, buf []byte) { newLCG(uint64(chunk) + 67).fill(buf) },
		Transform: func(pass, chunk int, buf []byte) {
			sig := ed25519.Sign(priv, buf[:len(buf)-ed25519.SignatureSize])
			copy(buf[len(buf)-ed25519.SignatureSize:], sig)
		},
	}
}

// LibJPEG stands in for libjpeg: forward DCT + quantisation over 8×8 blocks
// of a synthetic image.
func LibJPEG() *Kernel {
	return &Kernel{
		Name:       "libjpeg",
		HeapBytes:  128 * 1024,
		ChunkBytes: 16 * 1024,
		Init: func(chunk int, buf []byte) {
			// A gradient image with noise (compressible but non-trivial).
			r := newLCG(uint64(chunk) + 71)
			for i := range buf {
				buf[i] = byte(i%251) ^ byte(r.next()%16)
			}
		},
		Transform: func(pass, chunk int, buf []byte) {
			width := 128 // bytes per scanline inside the chunk
			rows := len(buf) / width
			for by := 0; by+8 <= rows; by += 8 {
				for bx := 0; bx+8 <= width; bx += 8 {
					var block [64]float64
					for y := 0; y < 8; y++ {
						for x := 0; x < 8; x++ {
							block[y*8+x] = float64(buf[(by+y)*width+bx+x]) - 128
						}
					}
					dct := fdct8x8(block)
					for y := 0; y < 8; y++ {
						for x := 0; x < 8; x++ {
							q := dct[y*8+x] / float64(1+(x+y)*3) // quantise
							buf[(by+y)*width+bx+x] = byte(int8(math.Max(-127, math.Min(127, q))))
						}
					}
				}
			}
		},
	}
}

// fdct8x8 computes the 2-D forward DCT of an 8×8 block.
func fdct8x8(in [64]float64) [64]float64 {
	var out [64]float64
	for u := 0; u < 8; u++ {
		for v := 0; v < 8; v++ {
			var s float64
			for y := 0; y < 8; y++ {
				for x := 0; x < 8; x++ {
					s += in[y*8+x] *
						math.Cos((2*float64(x)+1)*float64(v)*math.Pi/16) *
						math.Cos((2*float64(y)+1)*float64(u)*math.Pi/16)
				}
			}
			cu, cv := 1.0, 1.0
			if u == 0 {
				cu = math.Sqrt2 / 2
			}
			if v == 0 {
				cv = math.Sqrt2 / 2
			}
			out[u*8+v] = s * cu * cv / 4
		}
	}
	return out
}

// LibZip stands in for libzip: LZ77 compression of buffer chunks.
func LibZip() *Kernel {
	return &Kernel{
		Name:       "libzip",
		HeapBytes:  128 * 1024,
		ChunkBytes: 16 * 1024,
		Init: func(chunk int, buf []byte) {
			// Text-like repetitive input so compression does real work.
			pattern := []byte("the quick brown enclave jumps over the lazy hypervisor ")
			r := newLCG(uint64(chunk) + 73)
			for i := 0; i < len(buf); i++ {
				if r.next()%16 == 0 {
					buf[i] = byte(r.next())
				} else {
					buf[i] = pattern[i%len(pattern)]
				}
			}
		},
		Transform: func(pass, chunk int, buf []byte) {
			comp := lz77Compress(buf)
			// Fold the compressed size back in so the work is observable;
			// decompress to keep buffer contents stable across passes.
			setU64(buf, 0, u64at(buf, 0)^uint64(len(comp)))
		},
	}
}

// lz77Compress is a simple greedy LZ77 with a hash-chain matcher, emitting
// (dist, len) pairs or literals.
func lz77Compress(src []byte) []byte {
	const (
		minMatch  = 4
		maxMatch  = 255
		window    = 8192
		hashBits  = 13
		hashSize  = 1 << hashBits
		hashShift = 64 - hashBits
	)
	hash := func(p []byte) uint64 {
		v := uint64(p[0]) | uint64(p[1])<<8 | uint64(p[2])<<16 | uint64(p[3])<<24
		return (v * 2654435761) >> hashShift % hashSize
	}
	head := make([]int, hashSize)
	for i := range head {
		head[i] = -1
	}
	out := make([]byte, 0, len(src)/2)
	i := 0
	for i < len(src) {
		bestLen, bestDist := 0, 0
		if i+minMatch <= len(src) {
			h := hash(src[i:])
			cand := head[h]
			if cand >= 0 && i-cand <= window {
				l := 0
				for i+l < len(src) && l < maxMatch && src[cand+l] == src[i+l] {
					l++
				}
				if l >= minMatch {
					bestLen, bestDist = l, i-cand
				}
			}
			head[h] = i
		}
		switch {
		case bestLen > 0:
			out = append(out, 0xff, byte(bestDist), byte(bestDist>>8), byte(bestLen))
			i += bestLen
		case src[i] == 0xff:
			// Escape a literal 0xff as a zero-distance marker so the
			// format stays unambiguous.
			out = append(out, 0xff, 0, 0, 0)
			i++
		default:
			out = append(out, src[i])
			i++
		}
	}
	return out
}

// lz77Decompress reverses lz77Compress (used by the property tests; the
// benchmark kernel only measures compression, like the paper's libzip use).
func lz77Decompress(comp []byte) []byte {
	var out []byte
	i := 0
	for i < len(comp) {
		if comp[i] == 0xff && i+3 < len(comp) {
			dist := int(comp[i+1]) | int(comp[i+2])<<8
			length := int(comp[i+3])
			if dist == 0 {
				out = append(out, 0xff) // escaped literal
				i += 4
				continue
			}
			start := len(out) - dist
			for j := 0; j < length; j++ {
				out = append(out, out[start+j])
			}
			i += 4
		} else {
			out = append(out, comp[i])
			i++
		}
	}
	return out
}

// xteaDecrypt reverses xteaEncrypt.
func xteaDecrypt(key [4]uint32, v0, v1 uint32) (uint32, uint32) {
	const delta uint32 = 0x9e3779b9
	var sum uint32 = 0xC6EF3720 // delta * 32 mod 2^32
	for i := 0; i < 32; i++ {
		v1 -= (((v0 << 4) ^ (v0 >> 5)) + v0) ^ (sum + key[(sum>>11)&3])
		sum -= delta
		v0 -= (((v1 << 4) ^ (v1 >> 5)) + v1) ^ (sum + key[sum&3])
	}
	return v0, v1
}

// AppKernels returns the Fig. 9(b) suite in the paper's order
// (des, cr4, mcrypt, gnupg, libjpeg, libzip).
func AppKernels() []*Kernel {
	return []*Kernel{DES(), RC4(), Mcrypt(), GnuPG(), LibJPEG(), LibZip()}
}

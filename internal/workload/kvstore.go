package workload

import (
	"repro/internal/enclave"
	"repro/internal/sgx"
)

// KVStore is the memcached analogue of Fig. 11: an in-enclave hash-mapped
// key-value store whose occupied size directly drives checkpoint size. Keys
// and values are fixed-size slots in enclave heap memory.
//
// Heap layout: slot i at HeapBase + i*slotBytes:
//
//	[8B used flag][8B key][112B value]  (128-byte slots)
const (
	kvSlotBytes  = 128
	kvValueBytes = 112
)

// KV selectors.
const (
	KVSet  = 0 // R1 = key, fills the value deterministically; R0 = 1 if stored
	KVGet  = 1 // R1 = key; R0 = 1 if found, R2 = first value word
	KVFill = 2 // R1 = target bytes of occupied state; steps until reached
	KVLen  = 3 // R0 = occupied slots
)

// KVApp builds a KV-store enclave sized to hold capacityBytes of state.
func KVApp(capacityBytes int, workers int) *enclave.App {
	slots := capacityBytes / kvSlotBytes
	heapPages := (slots*kvSlotBytes + sgx.PageSize - 1) / sgx.PageSize
	if heapPages == 0 {
		heapPages = 1
	}
	k := &kvStore{slots: uint64(slots)}
	return &enclave.App{
		Name:        "kvstore",
		CodeVersion: "v1",
		Workers:     workers,
		HeapPages:   heapPages,
		ECalls:      []enclave.ECallFn{k.set, k.get, k.fill, k.length},
	}
}

type kvStore struct {
	slots uint64
}

func (k *kvStore) slotAddr(c *enclave.Call, key uint64) uint64 {
	h := key * 0x9e3779b97f4a7c15
	return c.HeapBase() + (h%k.slots)*kvSlotBytes
}

func (k *kvStore) set(c *enclave.Call) enclave.AppStatus {
	key := c.Regs[1]
	addr := k.slotAddr(c, key)
	var slot [kvSlotBytes]byte
	setU64(slot[:], 0, 1)
	setU64(slot[:], 1, key)
	r := newLCG(key)
	r.fill(slot[16:])
	if c.Store(addr, slot[:]) != nil {
		return enclave.AppAbort
	}
	c.Regs[0] = 1
	return enclave.AppDone
}

func (k *kvStore) get(c *enclave.Call) enclave.AppStatus {
	key := c.Regs[1]
	addr := k.slotAddr(c, key)
	var slot [kvSlotBytes]byte
	if c.Load(addr, slot[:]) != nil {
		return enclave.AppAbort
	}
	if u64at(slot[:], 0) == 1 && u64at(slot[:], 1) == key {
		c.Regs[0] = 1
		c.Regs[2] = u64at(slot[:], 2)
	} else {
		c.Regs[0] = 0
	}
	return enclave.AppDone
}

// fill populates slots until `target` bytes of state exist; one slot per
// step so the fill itself is interruptible.
func (k *kvStore) fill(c *enclave.Call) enclave.AppStatus {
	target := c.Regs[1] / kvSlotBytes
	if target > k.slots {
		target = k.slots
	}
	i := c.PC // slot cursor
	if i >= target {
		c.Regs[0] = i * kvSlotBytes
		return enclave.AppDone
	}
	addr := c.HeapBase() + i*kvSlotBytes
	var slot [kvSlotBytes]byte
	setU64(slot[:], 0, 1)
	setU64(slot[:], 1, i)
	newLCG(i).fill(slot[16:])
	if c.Store(addr, slot[:]) != nil {
		return enclave.AppAbort
	}
	c.PC = i + 1
	return enclave.AppRunning
}

func (k *kvStore) length(c *enclave.Call) enclave.AppStatus {
	// Count a sample of slots per step to stay bounded.
	const perStep = 256
	i := c.PC
	if i == 0 {
		c.Regs[5] = 0
	}
	var flag [8]byte
	end := i + perStep
	if end > k.slots {
		end = k.slots
	}
	for ; i < end; i++ {
		if c.Load(c.HeapBase()+i*kvSlotBytes, flag[:]) != nil {
			return enclave.AppAbort
		}
		if u64at(flag[:], 0) == 1 {
			c.Regs[5]++
		}
	}
	if i < k.slots {
		c.PC = i
		return enclave.AppRunning
	}
	c.Regs[0] = c.Regs[5]
	return enclave.AppDone
}

package workload

import (
	"math"
	"sort"
)

// The nine nbench 2.2.3 kernels (Fig. 9(a)), sized so that most working
// sets fit a small virtual EPC while String Sort exceeds it — reproducing
// the paper's observation that "if a workload in enclave requires more safe
// memory, the overhead introduced by SGX significantly increases. String
// Sort is such an example."

// NumericSort: qsort of signed 64-bit integers (nbench: arrays of longs).
func NumericSort() *Kernel {
	return &Kernel{
		Name:       "numeric-sort",
		HeapBytes:  64 * 1024,
		ChunkBytes: 0,
		Init:       func(chunk int, buf []byte) { newLCG(uint64(chunk) + 1).fill(buf) },
		Transform: func(pass, chunk int, buf []byte) {
			n := len(buf) / 8
			ints := make([]int64, n)
			for i := range ints {
				ints[i] = int64(u64at(buf, i))
			}
			// Re-shuffle deterministically each pass, then sort (nbench
			// re-sorts fresh arrays every iteration).
			r := newLCG(uint64(pass) + 7)
			for i := n - 1; i > 0; i-- {
				j := int(r.next() % uint64(i+1))
				ints[i], ints[j] = ints[j], ints[i]
			}
			sort.Slice(ints, func(i, j int) bool { return ints[i] < ints[j] })
			for i, v := range ints {
				setU64(buf, i, uint64(v))
			}
		},
	}
}

// StringSort: sorting variable-length strings; nbench's memory hog, sized
// past the virtual EPC so EWB/ELDU paging dominates.
func StringSort() *Kernel {
	return &Kernel{
		Name:       "string-sort",
		HeapBytes:  1536 * 1024,
		ChunkBytes: 0,
		Init:       func(chunk int, buf []byte) { newLCG(uint64(chunk) + 11).fill(buf) },
		Transform: func(pass, chunk int, buf []byte) {
			// Interpret the buffer as records of 4..66 bytes and sort them.
			var recs [][]byte
			r := newLCG(uint64(pass) + 13)
			for off := 0; off+66 <= len(buf); {
				l := 4 + int(r.next()%63)
				recs = append(recs, buf[off:off+l])
				off += l
			}
			sort.Slice(recs, func(i, j int) bool { return string(recs[i]) < string(recs[j]) })
			out := make([]byte, 0, len(buf))
			for _, rec := range recs {
				out = append(out, rec...)
			}
			copy(buf, out)
		},
	}
}

// BitfieldOps: bit manipulation over a large bit map.
func BitfieldOps() *Kernel {
	return &Kernel{
		Name:       "bitfield",
		HeapBytes:  128 * 1024,
		ChunkBytes: 16 * 1024,
		Init:       func(chunk int, buf []byte) { newLCG(uint64(chunk) + 17).fill(buf) },
		Transform: func(pass, chunk int, buf []byte) {
			r := newLCG(uint64(pass)<<16 | uint64(chunk))
			bits := uint64(len(buf) * 8)
			for op := 0; op < 2048; op++ {
				start := r.next() % bits
				length := r.next() % 256
				mode := r.next() % 3
				for b := start; b < start+length && b < bits; b++ {
					byteIdx, bit := b/8, byte(1)<<(b%8)
					switch mode {
					case 0:
						buf[byteIdx] |= bit
					case 1:
						buf[byteIdx] &^= bit
					default:
						buf[byteIdx] ^= bit
					}
				}
			}
		},
	}
}

// FPEmulation: software floating point — fixed-point multiply/divide
// emulation as in nbench's FP emulation suite.
func FPEmulation() *Kernel {
	return &Kernel{
		Name:       "fp-emulation",
		HeapBytes:  64 * 1024,
		ChunkBytes: 8 * 1024,
		Init:       func(chunk int, buf []byte) { newLCG(uint64(chunk) + 23).fill(buf) },
		Transform: func(pass, chunk int, buf []byte) {
			n := len(buf) / 8
			for i := 0; i+1 < n; i += 2 {
				a, b := u64at(buf, i)|1, u64at(buf, i+1)|1
				// Emulated 32.32 fixed-point multiply, divide and sqrt step.
				prod := fixMul(a, b)
				quot := fixDiv(a, b)
				s := prod ^ quot
				for k := 0; k < 4; k++ {
					s = fixMul(s|1, 0x1_8000_0000) // ×1.5 Newton-ish step
				}
				setU64(buf, i, prod+s)
				setU64(buf, i+1, quot^s)
			}
		},
	}
}

func fixMul(a, b uint64) uint64 {
	ah, al := a>>32, a&0xffffffff
	bh, bl := b>>32, b&0xffffffff
	return ah*bh<<32 + ah*bl + al*bh + al*bl>>32
}

func fixDiv(a, b uint64) uint64 {
	if b>>32 == 0 {
		b |= 1 << 32
	}
	return (a / (b >> 32)) << 16
}

// Assignment: the assignment-problem kernel (nbench uses a 101×101 cost
// matrix); we run a row-reduction + greedy matching, which preserves the
// memory/compute profile.
func Assignment() *Kernel {
	const dim = 101
	return &Kernel{
		Name:       "assignment",
		HeapBytes:  dim * dim * 4,
		ChunkBytes: 0,
		Init:       func(chunk int, buf []byte) { newLCG(uint64(chunk) + 29).fill(buf) },
		Transform: func(pass, chunk int, buf []byte) {
			n := dim
			cost := make([][]uint32, n)
			for i := range cost {
				cost[i] = make([]uint32, n)
				for j := range cost[i] {
					cost[i][j] = u32at(buf, i*n+j) % 1000
				}
			}
			// Row and column reduction.
			for i := 0; i < n; i++ {
				minv := cost[i][0]
				for j := 1; j < n; j++ {
					if cost[i][j] < minv {
						minv = cost[i][j]
					}
				}
				for j := 0; j < n; j++ {
					cost[i][j] -= minv
				}
			}
			for j := 0; j < n; j++ {
				minv := cost[0][j]
				for i := 1; i < n; i++ {
					if cost[i][j] < minv {
						minv = cost[i][j]
					}
				}
				for i := 0; i < n; i++ {
					cost[i][j] -= minv
				}
			}
			// Greedy zero matching; write assignment back.
			usedCol := make([]bool, n)
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					if cost[i][j] == 0 && !usedCol[j] {
						usedCol[j] = true
						setU32(buf, i*n, uint32(j))
						break
					}
				}
			}
		},
	}
}

// IDEA: the IDEA block cipher over the buffer (nbench's IDEA kernel).
func IDEA() *Kernel {
	var key [8]uint16
	for i := range key {
		key[i] = uint16(0x1234 + 137*i)
	}
	sub := ideaExpandKey(key)
	return &Kernel{
		Name:       "idea",
		HeapBytes:  64 * 1024,
		ChunkBytes: 8 * 1024,
		Init:       func(chunk int, buf []byte) { newLCG(uint64(chunk) + 31).fill(buf) },
		Transform: func(pass, chunk int, buf []byte) {
			for off := 0; off+8 <= len(buf); off += 8 {
				ideaEncryptBlock(sub, buf[off:off+8])
			}
		},
	}
}

func ideaMul(a, b uint16) uint16 {
	if a == 0 {
		return uint16(1 - int32(b))
	}
	if b == 0 {
		return uint16(1 - int32(a))
	}
	p := uint32(a) * uint32(b)
	hi, lo := uint16(p>>16), uint16(p)
	if lo > hi {
		return lo - hi
	}
	return lo - hi + 1
}

func ideaExpandKey(key [8]uint16) [52]uint16 {
	var sub [52]uint16
	copy(sub[:8], key[:])
	for i := 8; i < 52; i++ {
		base := (i / 8) * 8
		j := i % 8
		if j < 6 {
			sub[i] = sub[base-8+(j+1)%8]<<9 | sub[base-8+(j+2)%8]>>7
		} else {
			sub[i] = sub[base-8+(j+1)%8]<<9 | sub[base-8+(j+2)%8]>>7
		}
	}
	return sub
}

func ideaEncryptBlock(sub [52]uint16, b []byte) {
	x1 := uint16(b[0])<<8 | uint16(b[1])
	x2 := uint16(b[2])<<8 | uint16(b[3])
	x3 := uint16(b[4])<<8 | uint16(b[5])
	x4 := uint16(b[6])<<8 | uint16(b[7])
	for r := 0; r < 8; r++ {
		k := sub[r*6 : r*6+6]
		x1 = ideaMul(x1, k[0])
		x2 += k[1]
		x3 += k[2]
		x4 = ideaMul(x4, k[3])
		t0 := x1 ^ x3
		t1 := x2 ^ x4
		t0 = ideaMul(t0, k[4])
		t1 += t0
		t1 = ideaMul(t1, k[5])
		t0 += t1
		x1 ^= t1
		x4 ^= t0
		t0 ^= x2
		x2 = x3 ^ t1
		x3 = t0
	}
	k := sub[48:52]
	y1 := ideaMul(x1, k[0])
	y2 := x3 + k[1]
	y3 := x2 + k[2]
	y4 := ideaMul(x4, k[3])
	b[0], b[1] = byte(y1>>8), byte(y1)
	b[2], b[3] = byte(y2>>8), byte(y2)
	b[4], b[5] = byte(y3>>8), byte(y3)
	b[6], b[7] = byte(y4>>8), byte(y4)
}

// Huffman: build a Huffman code over the chunk and encode it (nbench's
// Huffman compression kernel).
func Huffman() *Kernel {
	return &Kernel{
		Name:       "huffman",
		HeapBytes:  128 * 1024,
		ChunkBytes: 16 * 1024,
		Init: func(chunk int, buf []byte) {
			// Skewed distribution so the code tree is non-trivial.
			r := newLCG(uint64(chunk) + 37)
			for i := range buf {
				v := r.next()
				buf[i] = byte((v % 16) * (v % 13) % 64)
			}
		},
		Transform: func(pass, chunk int, buf []byte) {
			lens := huffmanCodeLengths(buf)
			// "Encode": accumulate total code length and fold it back into
			// the buffer head so the work is observable.
			var total uint64
			for _, b := range buf {
				total += uint64(lens[b])
			}
			setU64(buf, 0, u64at(buf, 0)^total)
		},
	}
}

// huffmanCodeLengths builds canonical Huffman code lengths for a buffer.
func huffmanCodeLengths(buf []byte) [256]int {
	var freq [256]int
	for _, b := range buf {
		freq[b]++
	}
	type node struct {
		w           int
		sym         int // -1 for internal
		left, right *node
	}
	var heap []*node
	push := func(n *node) {
		heap = append(heap, n)
		for i := len(heap) - 1; i > 0; {
			p := (i - 1) / 2
			if heap[p].w <= heap[i].w {
				break
			}
			heap[p], heap[i] = heap[i], heap[p]
			i = p
		}
	}
	pop := func() *node {
		n := heap[0]
		last := len(heap) - 1
		heap[0] = heap[last]
		heap = heap[:last]
		for i := 0; ; {
			l, r := 2*i+1, 2*i+2
			small := i
			if l < last && heap[l].w < heap[small].w {
				small = l
			}
			if r < last && heap[r].w < heap[small].w {
				small = r
			}
			if small == i {
				break
			}
			heap[i], heap[small] = heap[small], heap[i]
			i = small
		}
		return n
	}
	for s, f := range freq {
		if f > 0 {
			push(&node{w: f, sym: s})
		}
	}
	if len(heap) == 1 {
		var lens [256]int
		lens[heap[0].sym] = 1
		return lens
	}
	for len(heap) > 1 {
		a, b := pop(), pop()
		push(&node{w: a.w + b.w, sym: -1, left: a, right: b})
	}
	var lens [256]int
	var walk func(n *node, d int)
	walk = func(n *node, d int) {
		if n == nil {
			return
		}
		if n.sym >= 0 {
			lens[n.sym] = d
			return
		}
		walk(n.left, d+1)
		walk(n.right, d+1)
	}
	walk(heap[0], 0)
	return lens
}

// NeuralNet: back-propagation training of a small MLP (nbench's neural net
// kernel trains an 8×8 input to 8-output net).
func NeuralNet() *Kernel {
	const (
		in  = 35
		hid = 8
		out = 8
	)
	weights := (in*hid + hid*out) * 8
	return &Kernel{
		Name:       "neural-net",
		HeapBytes:  ((weights+4095)/4096 + 1) * 4096,
		ChunkBytes: 0,
		Init: func(chunk int, buf []byte) {
			r := newLCG(uint64(chunk) + 41)
			for i := 0; i < len(buf)/8; i++ {
				setU64(buf, i, math.Float64bits(float64(int64(r.next()%2000)-1000)/1000))
			}
		},
		Transform: func(pass, chunk int, buf []byte) {
			w1 := make([]float64, in*hid)
			w2 := make([]float64, hid*out)
			for i := range w1 {
				w1[i] = math.Float64frombits(u64at(buf, i))
			}
			for i := range w2 {
				w2[i] = math.Float64frombits(u64at(buf, in*hid+i))
			}
			r := newLCG(uint64(pass) + 43)
			for sample := 0; sample < 16; sample++ {
				var x [in]float64
				var target [out]float64
				for i := range x {
					x[i] = float64(r.next() % 2) // binary patterns
				}
				for i := range target {
					target[i] = float64(r.next() % 2)
				}
				// Forward.
				var h [hid]float64
				for j := 0; j < hid; j++ {
					s := 0.0
					for i := 0; i < in; i++ {
						s += x[i] * w1[i*hid+j]
					}
					h[j] = 1 / (1 + math.Exp(-s))
				}
				var y [out]float64
				for k := 0; k < out; k++ {
					s := 0.0
					for j := 0; j < hid; j++ {
						s += h[j] * w2[j*out+k]
					}
					y[k] = 1 / (1 + math.Exp(-s))
				}
				// Backward.
				const lr = 0.25
				var dOut [out]float64
				for k := 0; k < out; k++ {
					dOut[k] = (target[k] - y[k]) * y[k] * (1 - y[k])
				}
				var dHid [hid]float64
				for j := 0; j < hid; j++ {
					s := 0.0
					for k := 0; k < out; k++ {
						s += dOut[k] * w2[j*out+k]
					}
					dHid[j] = s * h[j] * (1 - h[j])
				}
				for j := 0; j < hid; j++ {
					for k := 0; k < out; k++ {
						w2[j*out+k] += lr * dOut[k] * h[j]
					}
				}
				for i := 0; i < in; i++ {
					for j := 0; j < hid; j++ {
						w1[i*hid+j] += lr * dHid[j] * x[i]
					}
				}
			}
			for i := range w1 {
				setU64(buf, i, math.Float64bits(w1[i]))
			}
			for i := range w2 {
				setU64(buf, in*hid+i, math.Float64bits(w2[i]))
			}
		},
	}
}

// LUDecomposition: LU decomposition of dense matrices (nbench solves
// 101×101 systems).
func LUDecomposition() *Kernel {
	const n = 101
	return &Kernel{
		Name:       "lu-decomposition",
		HeapBytes:  ((n*n*8 + 4095) / 4096) * 4096,
		ChunkBytes: 0,
		Init: func(chunk int, buf []byte) {
			r := newLCG(uint64(chunk) + 47)
			for i := 0; i < len(buf)/8; i++ {
				setU64(buf, i, math.Float64bits(1+float64(r.next()%1000)/100))
			}
		},
		Transform: func(pass, chunk int, buf []byte) {
			a := make([]float64, n*n)
			for i := range a {
				a[i] = math.Float64frombits(u64at(buf, i))
			}
			// Doolittle LU with partial pivoting.
			for k := 0; k < n; k++ {
				// pivot
				p, maxv := k, math.Abs(a[k*n+k])
				for i := k + 1; i < n; i++ {
					if v := math.Abs(a[i*n+k]); v > maxv {
						p, maxv = i, v
					}
				}
				if p != k {
					for j := 0; j < n; j++ {
						a[k*n+j], a[p*n+j] = a[p*n+j], a[k*n+j]
					}
				}
				piv := a[k*n+k]
				if piv == 0 {
					piv = 1e-12
				}
				for i := k + 1; i < n; i++ {
					f := a[i*n+k] / piv
					a[i*n+k] = f
					for j := k + 1; j < n; j++ {
						a[i*n+j] -= f * a[k*n+j]
					}
				}
			}
			for i := range a {
				setU64(buf, i, math.Float64bits(a[i]))
			}
		},
	}
}

// NbenchKernels returns the full Fig. 9(a) suite in the paper's order.
func NbenchKernels() []*Kernel {
	return []*Kernel{
		NumericSort(),
		StringSort(),
		BitfieldOps(),
		FPEmulation(),
		Assignment(),
		IDEA(),
		Huffman(),
		NeuralNet(),
		LUDecomposition(),
	}
}

// Package workload reimplements the benchmarks the paper evaluates with:
// the nine nbench 2.2.3 kernels (Fig. 9(a)), the real-world application
// analogues — des, rc4, mcrypt, gnupg, libjpeg, libzip — (Fig. 9(b)), and a
// memcached-like in-enclave KV store (Fig. 11). Every workload exists in two
// forms: a native Go implementation operating on plain memory, and an
// enclave application whose working set lives in EPC-backed enclave memory,
// so the SDK/SGX overhead is a real measurement, not a model.
package workload

import (
	"encoding/binary"

	"repro/internal/enclave"
	"repro/internal/sgx"
)

// AccessMode selects how the in-enclave kernels touch enclave memory.
type AccessMode uint64

// Access modes.
const (
	// AccessBulk copies whole chunks across the enclave boundary check —
	// how this repo's SDK works (one EPCM check per chunk).
	AccessBulk AccessMode = 0
	// AccessWord performs an EPCM-checked access per 8-byte word,
	// modelling an SDK with word-granular boundary hardening (stands in
	// for the "Intel SDK" series of Fig. 9(a); see DESIGN.md).
	AccessWord AccessMode = 1
)

// RunSelector is every kernel app's single ecall:
// R1 = passes, R2 = AccessMode; returns a checksum in R0.
const RunSelector = 0

// Kernel describes one benchmark kernel. Transform must be a pure function
// of its buffer (plus pass/chunk indices): the enclave harness calls it on
// data staged from enclave memory, the native harness on plain memory, so
// both execute identical computation.
type Kernel struct {
	// Name identifies the kernel ("numeric-sort", ...).
	Name string
	// HeapBytes is the working-set size.
	HeapBytes int
	// ChunkBytes is the staging granularity (0 = whole heap in one chunk).
	ChunkBytes int
	// Init fills a chunk with deterministic pseudo-random input.
	Init func(chunk int, buf []byte)
	// Transform processes one chunk for one pass.
	Transform func(pass, chunk int, buf []byte)
}

func (k *Kernel) chunkBytes() int {
	if k.ChunkBytes <= 0 || k.ChunkBytes > k.HeapBytes {
		return k.HeapBytes
	}
	return k.ChunkBytes
}

func (k *Kernel) chunks() int {
	c := k.chunkBytes()
	return (k.HeapBytes + c - 1) / c
}

func (k *Kernel) heapPages() int {
	return (k.HeapBytes + sgx.PageSize - 1) / sgx.PageSize
}

// NumChunks exposes the chunk count (for tests).
func (k *Kernel) NumChunks() int { return k.chunks() }

// Native runs the kernel on plain memory: the Fig. 9(a) "native" series.
func (k *Kernel) Native(passes int) uint64 {
	buf := make([]byte, k.HeapBytes)
	cb := k.chunkBytes()
	for c := 0; c < k.chunks(); c++ {
		k.Init(c, chunkOf(buf, c, cb))
	}
	for p := 0; p < passes; p++ {
		for c := 0; c < k.chunks(); c++ {
			k.Transform(p, c, chunkOf(buf, c, cb))
		}
	}
	return fnv64(buf)
}

func chunkOf(buf []byte, c, cb int) []byte {
	lo := c * cb
	hi := lo + cb
	if hi > len(buf) {
		hi = len(buf)
	}
	return buf[lo:hi]
}

// App builds the enclave application for the kernel. The single ecall is a
// step machine: one chunk staged, transformed and written back per step, so
// the kernel is interruptible and migratable at chunk granularity.
func (k *Kernel) App(workers int) *enclave.App {
	return &enclave.App{
		Name:        "nbench-" + k.Name,
		CodeVersion: "v1",
		Workers:     workers,
		HeapPages:   k.heapPages(),
		ECalls:      []enclave.ECallFn{k.runECall},
	}
}

// AppNoStubs builds the migration-stub-free variant for the Fig. 9(b)
// overhead ablation.
func (k *Kernel) AppNoStubs(workers int) *enclave.App {
	app := k.App(workers)
	app.Name += "-nostubs"
	app.DisableMigrationStubs = true
	return app
}

// Step phases for runECall: PC encodes (phase, pass, chunk).
const (
	phaseInit = 0
	phaseWork = 1
	phaseSum  = 2
)

// The SDK persists application PCs as 32-bit values (they live in SSA
// frames), so the kernel state machine packs phase/pass/chunk into 32 bits:
// 4+14+14. That caps kernels at 16383 passes over 16383 chunks.
func packPC(phase, pass, chunk uint64) uint64 { return phase<<28 | pass<<14 | chunk }
func unpackPC(pc uint64) (phase, pass, chunk uint64) {
	return pc >> 28, (pc >> 14) & ((1 << 14) - 1), pc & ((1 << 14) - 1)
}

// runECall is the kernel's trusted entry: R1 = passes, R2 = AccessMode.
func (k *Kernel) runECall(c *enclave.Call) enclave.AppStatus {
	phase, pass, chunk := unpackPC(c.PC)
	passes := c.Regs[1]
	mode := AccessMode(c.Regs[2])
	cb := uint64(k.chunkBytes())
	nchunks := uint64(k.chunks())

	chunkLen := cb
	if (chunk+1)*cb > uint64(k.HeapBytes) {
		chunkLen = uint64(k.HeapBytes) - chunk*cb
	}
	addr := c.HeapBase() + chunk*cb
	buf := make([]byte, chunkLen)

	switch phase {
	case phaseInit:
		k.Init(int(chunk), buf)
		if err := storeChunk(c, addr, buf, mode); err != nil {
			return enclave.AppAbort
		}
		if chunk+1 < nchunks {
			c.PC = packPC(phaseInit, 0, chunk+1)
		} else if passes == 0 {
			c.PC = packPC(phaseSum, 0, 0)
			c.Regs[5] = fnvOffset
		} else {
			c.PC = packPC(phaseWork, 0, 0)
		}
		return enclave.AppRunning
	case phaseWork:
		if err := loadChunk(c, addr, buf, mode); err != nil {
			return enclave.AppAbort
		}
		k.Transform(int(pass), int(chunk), buf)
		if err := storeChunk(c, addr, buf, mode); err != nil {
			return enclave.AppAbort
		}
		switch {
		case chunk+1 < nchunks:
			c.PC = packPC(phaseWork, pass, chunk+1)
		case pass+1 < passes:
			c.PC = packPC(phaseWork, pass+1, 0)
		default:
			c.PC = packPC(phaseSum, 0, 0)
			c.Regs[5] = fnvOffset // running checksum in R5
		}
		return enclave.AppRunning
	default: // phaseSum
		if err := loadChunk(c, addr, buf, mode); err != nil {
			return enclave.AppAbort
		}
		c.Regs[5] = fnv64Continue(c.Regs[5], buf)
		if chunk+1 < nchunks {
			c.PC = packPC(phaseSum, 0, chunk+1)
			return enclave.AppRunning
		}
		c.Regs[0] = c.Regs[5]
		return enclave.AppDone
	}
}

func loadChunk(c *enclave.Call, addr uint64, buf []byte, mode AccessMode) error {
	if mode == AccessBulk {
		return c.Load(addr, buf)
	}
	var w [8]byte
	for off := 0; off < len(buf); off += 8 {
		n := len(buf) - off
		if n > 8 {
			n = 8
		}
		if err := c.Load(addr+uint64(off), w[:n]); err != nil {
			return err
		}
		copy(buf[off:off+n], w[:n])
	}
	return nil
}

func storeChunk(c *enclave.Call, addr uint64, buf []byte, mode AccessMode) error {
	if mode == AccessBulk {
		return c.Store(addr, buf)
	}
	for off := 0; off < len(buf); off += 8 {
		n := len(buf) - off
		if n > 8 {
			n = 8
		}
		if err := c.Store(addr+uint64(off), buf[off:off+n]); err != nil {
			return err
		}
	}
	return nil
}

// --- deterministic pseudo-randomness and checksums (shared by kernels) ---

const fnvOffset = 1469598103934665603

// fnv64 hashes a buffer with FNV-1a.
func fnv64(b []byte) uint64 { return fnv64Continue(fnvOffset, b) }

func fnv64Continue(h uint64, b []byte) uint64 {
	for _, c := range b {
		h ^= uint64(c)
		h *= 1099511628211
	}
	return h
}

// lcg is a 64-bit linear congruential generator for reproducible inputs.
type lcg uint64

func newLCG(seed uint64) *lcg { l := lcg(seed*2862933555777941757 + 3037000493); return &l }

func (l *lcg) next() uint64 {
	*l = *l*6364136223846793005 + 1442695040888963407
	return uint64(*l)
}

func (l *lcg) fill(b []byte) {
	for i := 0; i+8 <= len(b); i += 8 {
		binary.LittleEndian.PutUint64(b[i:], l.next())
	}
	for i := len(b) &^ 7; i < len(b); i++ {
		b[i] = byte(l.next())
	}
}

// u64s views a byte slice as little-endian uint64 values.
func u64at(b []byte, i int) uint64     { return binary.LittleEndian.Uint64(b[i*8:]) }
func setU64(b []byte, i int, v uint64) { binary.LittleEndian.PutUint64(b[i*8:], v) }

func u32at(b []byte, i int) uint32     { return binary.LittleEndian.Uint32(b[i*4:]) }
func setU32(b []byte, i int, v uint32) { binary.LittleEndian.PutUint32(b[i*4:], v) }

package workload

import (
	"testing"
	"testing/quick"
	"time"

	"repro/internal/enclave"
	"repro/internal/sgx"
	"repro/internal/tcb"
)

func buildKernelEnclave(t testing.TB, app *enclave.App) *enclave.Runtime {
	t.Helper()
	m, err := sgx.NewMachine(sgx.Config{Name: "bench", EPCFrames: 8192})
	if err != nil {
		t.Fatal(err)
	}
	host := enclave.NewBareHost(m)
	signer, err := tcb.NewSigningIdentity()
	if err != nil {
		t.Fatal(err)
	}
	svc, err := tcb.NewSigningIdentity()
	if err != nil {
		t.Fatal(err)
	}
	app.EnclavePublic = signer.Public()
	app.ServicePublic = svc.Public()
	rt, err := enclave.Build(host, app, signer)
	if err != nil {
		t.Fatal(err)
	}
	return rt
}

// TestKernelsEnclaveMatchesNative is the core workload property: the
// enclave execution of every kernel computes exactly what the native
// execution computes, for both memory-access modes.
func TestKernelsEnclaveMatchesNative(t *testing.T) {
	kernels := append(NbenchKernels(), AppKernels()...)
	for _, k := range kernels {
		k := k
		t.Run(k.Name, func(t *testing.T) {
			const passes = 1
			want := k.Native(passes)
			for _, mode := range []AccessMode{AccessBulk, AccessWord} {
				rt := buildKernelEnclave(t, k.App(1))
				res, err := rt.ECall(0, RunSelector, passes, uint64(mode))
				if err != nil {
					t.Fatalf("mode %d: %v", mode, err)
				}
				if res[0] != want {
					t.Fatalf("mode %d: enclave checksum %x != native %x", mode, res[0], want)
				}
				if err := rt.Destroy(); err != nil {
					t.Fatal(err)
				}
			}
		})
	}
}

func TestKernelNoStubsMatchesNative(t *testing.T) {
	k := RC4()
	want := k.Native(2)
	rt := buildKernelEnclave(t, k.AppNoStubs(1))
	res, err := rt.ECall(0, RunSelector, 2, uint64(AccessBulk))
	if err != nil {
		t.Fatal(err)
	}
	if res[0] != want {
		t.Fatalf("nostubs checksum %x != native %x", res[0], want)
	}
}

func TestKVStore(t *testing.T) {
	rt := buildKernelEnclave(t, KVApp(256*1024, 1))

	if _, err := rt.ECall(0, KVSet, 42); err != nil {
		t.Fatal(err)
	}
	res, err := rt.ECall(0, KVGet, 42)
	if err != nil {
		t.Fatal(err)
	}
	if res[0] != 1 {
		t.Fatal("stored key not found")
	}
	missing, err := rt.ECall(0, KVGet, 987654321)
	if err != nil {
		t.Fatal(err)
	}
	if missing[0] == 1 && missing[2] == res[2] {
		t.Fatal("phantom value for missing key")
	}

	fill, err := rt.ECall(0, KVFill, 128*1024)
	if err != nil {
		t.Fatal(err)
	}
	if fill[0] < 128*1024 {
		t.Fatalf("filled %d bytes, want >= %d", fill[0], 128*1024)
	}
	n, err := rt.ECall(0, KVLen)
	if err != nil {
		t.Fatal(err)
	}
	if n[0] < 128*1024/kvSlotBytes {
		t.Fatalf("occupied slots = %d, want >= %d", n[0], 128*1024/kvSlotBytes)
	}
}

// TestStringSortPagesUnderSmallEPC pins the Fig. 9(a) mechanism: with a
// virtual EPC smaller than the working set, the kernel still computes the
// right answer but the driver observes evictions and reloads.
func TestStringSortPagesUnderSmallEPC(t *testing.T) {
	if testing.Short() {
		t.Skip("paging test is slow")
	}
	k := StringSort()
	m, err := sgx.NewMachine(sgx.Config{Name: "smallepc", EPCFrames: 8192})
	if err != nil {
		t.Fatal(err)
	}
	// Small manager pool: ~1.2 MiB of EPC for a 1.5 MiB working set.
	mgrHost := enclave.NewConstrainedHost(m, 300)
	signer, err := tcb.NewSigningIdentity()
	if err != nil {
		t.Fatal(err)
	}
	app := k.App(1)
	app.EnclavePublic = signer.Public()
	rt, err := enclave.Build(mgrHost, app, signer)
	if err != nil {
		t.Fatal(err)
	}
	want := k.Native(1)
	res, err := rt.ECall(0, RunSelector, 1, uint64(AccessBulk))
	if err != nil {
		t.Fatal(err)
	}
	if res[0] != want {
		t.Fatalf("checksum under paging %x != native %x", res[0], want)
	}
	ev, rl := mgrHost.Mgr.Stats()
	if ev == 0 || rl == 0 {
		t.Fatalf("expected EPC thrash, got evictions=%d reloads=%d", ev, rl)
	}
}

// TestLZ77RoundTrip: the libzip kernel's compressor is lossless. Literal
// 0xff bytes are escaped only by position, so restrict inputs accordingly:
// the compressor treats 0xff as a match marker, meaning inputs containing
// 0xff are exercised via the compressible-text generator instead.
func TestLZ77RoundTrip(t *testing.T) {
	k := LibZip()
	buf := make([]byte, 16*1024)
	k.Init(0, buf)
	comp := lz77Compress(buf)
	if len(comp) >= len(buf) {
		t.Fatalf("no compression on compressible input: %d >= %d", len(comp), len(buf))
	}
	got := lz77Decompress(comp)
	if len(got) != len(buf) {
		t.Fatalf("decompressed length %d != %d", len(got), len(buf))
	}
	for i := range buf {
		if got[i] != buf[i] {
			t.Fatalf("mismatch at %d", i)
		}
	}
}

// TestXTEARoundTrip: encrypt/decrypt are inverses for arbitrary blocks.
func TestXTEARoundTrip(t *testing.T) {
	var key [4]uint32
	for i := range key {
		key[i] = uint32(0x9e3779b9 * (i + 1))
	}
	f := func(a, b uint32) bool {
		c0, c1 := xteaEncrypt(key, a, b)
		d0, d1 := xteaDecrypt(key, c0, c1)
		return d0 == a && d1 == b && (c0 != a || c1 != b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestKernelDeterminism: every kernel's native run is reproducible — the
// foundation of the enclave-equals-native checksum property.
func TestKernelDeterminism(t *testing.T) {
	for _, k := range append(NbenchKernels(), AppKernels()...) {
		if k.Native(1) != k.Native(1) {
			t.Fatalf("%s: non-deterministic", k.Name)
		}
	}
}

// TestKernelInterruptedMatches: interrupting an in-enclave kernel run with
// AEX storms must not change the result (step model correctness).
func TestKernelInterruptedMatches(t *testing.T) {
	k := IDEA()
	want := k.Native(1)
	rt := buildKernelEnclave(t, k.App(1))
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			select {
			case <-done:
				return
			default:
				rt.InterruptWorkers()
				time.Sleep(50 * time.Microsecond)
			}
		}
	}()
	res, err := rt.ECall(0, RunSelector, 1, uint64(AccessBulk))
	done <- struct{}{}
	if err != nil {
		t.Fatal(err)
	}
	if res[0] != want {
		t.Fatalf("interrupted run checksum %x != native %x", res[0], want)
	}
}

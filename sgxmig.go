// Package sgxmig is a Go reproduction of "Secure Live Migration of SGX
// Enclaves on Untrusted Cloud" (Gu et al., DSN 2017): secure live migration
// of SGX enclaves — and of whole VMs containing them — between untrusted
// machines, implemented over a faithful functional simulator of the SGX
// hardware surface.
//
// The package is a facade over the implementation packages:
//
//   - internal/sgx      — the SGX hardware simulator (EPC/EPCM, TCS/SSA/CSSA,
//     EENTER/EEXIT/AEX/ERESUME, EWB/ELDU, EREPORT/EGETKEY, quotes)
//   - internal/enclave  — the SDK and untrusted runtime (control thread,
//     two-phase checkpointing stubs, in-enclave CSSA tracking)
//   - internal/attest   — the attestation service ecosystem
//   - internal/core     — the migration protocol (the paper's contribution)
//   - internal/vmm      — hypervisor, guest OS and live VM migration
//   - internal/workload — the paper's benchmark workloads
//   - internal/hwext    — the proposed hardware extension (Sec. VII-B)
//
// Quickstart:
//
//	service, _ := sgxmig.NewAttestationService()
//	owner, _ := sgxmig.NewOwner(service)
//	machineA, _ := sgxmig.NewMachine(sgxmig.MachineConfig{Name: "a"})
//	machineB, _ := sgxmig.NewMachine(sgxmig.MachineConfig{Name: "b"})
//	service.RegisterMachine(machineA.AttestationPublic())
//	service.RegisterMachine(machineB.AttestationPublic())
//	... build an App, Provision it, and Migrate it — see examples/quickstart.
package sgxmig

import (
	"repro/internal/attest"
	"repro/internal/core"
	"repro/internal/enclave"
	"repro/internal/sgx"
	"repro/internal/tcb"
	"repro/internal/vmm"
)

// Re-exported hardware types.
type (
	// Machine is a simulated SGX-capable physical machine.
	Machine = sgx.Machine
	// MachineConfig configures a machine.
	MachineConfig = sgx.Config
	// EnclaveID identifies a live enclave on one machine.
	EnclaveID = sgx.EnclaveID
	// Quote is a remote-attestation statement.
	Quote = sgx.Quote
	// Report is a local-attestation report.
	Report = sgx.Report
)

// Re-exported SDK types.
type (
	// App describes an enclave application (trusted step functions plus
	// sizing and embedded keys).
	App = enclave.App
	// Call is the trusted-side view an ecall step function receives.
	Call = enclave.Call
	// ECallFn is a trusted entry point.
	ECallFn = enclave.ECallFn
	// AppStatus is a step outcome.
	AppStatus = enclave.AppStatus
	// Runtime is the untrusted host runtime of one enclave.
	Runtime = enclave.Runtime
	// Host is the platform (EPC manager + fault dispatcher) of a machine.
	Host = enclave.Host
)

// Step outcomes.
const (
	AppRunning = enclave.AppRunning
	AppDone    = enclave.AppDone
	AppOCall   = enclave.AppOCall
	AppAbort   = enclave.AppAbort
)

// Re-exported attestation and migration types.
type (
	// AttestationService is the IAS-like verifier.
	AttestationService = attest.Service
	// Owner is the enclave owner (image signing, provisioning, audit).
	Owner = core.Owner
	// Deployment is a distributable (App, SIGSTRUCT) bundle.
	Deployment = core.Deployment
	// Registry maps image names to deployments on a host.
	Registry = core.Registry
	// MigrationOptions configures migrations.
	MigrationOptions = core.Options
	// SourceReport carries source-side migration metrics.
	SourceReport = core.SourceReport
	// Incoming is the result of a target-side migration.
	Incoming = core.Incoming
	// Transport moves migration protocol messages.
	Transport = core.Transport
	// AgentSession manages a Sec. VI-D agent enclave.
	AgentSession = core.AgentSession
	// CheckpointCipher selects rc4/des/aes-gcm checkpoint encryption.
	CheckpointCipher = tcb.CheckpointCipher
)

// Checkpoint ciphers.
const (
	CipherAESGCM = tcb.CipherAESGCM
	CipherRC4    = tcb.CipherRC4
	CipherDES    = tcb.CipherDES
)

// Re-exported VM types.
type (
	// Node is a physical machine hosting VMs.
	Node = vmm.Node
	// NodeConfig sizes a node.
	NodeConfig = vmm.NodeConfig
	// VM is a guest virtual machine.
	VM = vmm.VM
	// VMConfig sizes a VM.
	VMConfig = vmm.VMConfig
	// LiveMigrationConfig parameterises a VM live migration.
	LiveMigrationConfig = vmm.LiveMigrationConfig
	// LiveMigrationStats are the Fig. 10 metrics.
	LiveMigrationStats = vmm.LiveMigrationStats
	// WorkloadFunc drives one enclave worker from a guest process.
	WorkloadFunc = vmm.WorkloadFunc
)

// NewMachine boots a simulated SGX machine.
func NewMachine(cfg MachineConfig) (*Machine, error) { return sgx.NewMachine(cfg) }

// NewHost prepares a machine to build and host enclaves.
func NewHost(m *Machine) *Host { return enclave.NewBareHost(m) }

// NewAttestationService creates the IAS-like service.
func NewAttestationService() (*AttestationService, error) { return attest.NewService() }

// NewOwner creates an enclave owner registered with the service.
func NewOwner(service *AttestationService) (*Owner, error) { return core.NewOwner(service) }

// BuildEnclave constructs, measures, initialises and provisions an enclave
// for an owner-configured app.
func BuildEnclave(host *Host, app *App, owner *Owner) (*Runtime, error) {
	owner.ConfigureApp(app)
	rt, err := enclave.Build(host, app, owner.Signer())
	if err != nil {
		return nil, err
	}
	if err := owner.Provision(rt); err != nil {
		_ = rt.Destroy()
		return nil, err
	}
	return rt, nil
}

// NewDeployment prepares the distributable image bundle for an
// owner-configured app.
func NewDeployment(app *App, owner *Owner) *Deployment { return core.NewDeployment(app, owner) }

// NewRegistry creates an empty deployment registry.
func NewRegistry() *Registry { return core.NewRegistry() }

// NewPipe creates an in-process migration transport pair.
func NewPipe() (Transport, Transport) { return core.NewPipe() }

// MigrateOut runs the source side of an enclave migration.
func MigrateOut(src *Runtime, t Transport, opts *MigrationOptions) (SourceReport, error) {
	return core.MigrateOut(src, t, opts)
}

// MigrateIn runs the target side of an enclave migration.
func MigrateIn(host *Host, reg *Registry, t Transport, opts *MigrationOptions) (*Incoming, error) {
	return core.MigrateIn(host, reg, t, opts)
}

// Migrate runs a complete in-process migration between two hosts and
// returns the live target runtime.
func Migrate(src *Runtime, dstHost *Host, reg *Registry, opts *MigrationOptions) (*Incoming, error) {
	t1, t2 := core.NewPipe()
	type result struct {
		inc *Incoming
		err error
	}
	ch := make(chan result, 1)
	go func() {
		inc, err := core.MigrateIn(dstHost, reg, t2, opts)
		ch <- result{inc, err}
	}()
	if _, err := core.MigrateOut(src, t1, opts); err != nil {
		return nil, err
	}
	r := <-ch
	return r.inc, r.err
}

// OwnerCheckpoint takes an audited, owner-keyed snapshot (Sec. V-C).
func OwnerCheckpoint(o *Owner, rt *Runtime) ([]byte, error) { return core.OwnerCheckpoint(o, rt) }

// OwnerResume restores an owner-keyed snapshot into a fresh enclave.
func OwnerResume(o *Owner, host *Host, dep *Deployment, blob []byte) (*Incoming, error) {
	return core.OwnerResume(o, host, dep, blob)
}

// StartAgent deploys the Sec. VI-D agent enclave on a target host.
func StartAgent(host *Host, owner *Owner) (*AgentSession, error) {
	return core.StartAgent(host, owner)
}

// AgentMeasurement computes the agent enclave measurement an app should
// embed (App.AgentMeasurement) to enable the agent optimisation.
func AgentMeasurement(owner *Owner) [32]byte {
	return enclave.MeasureApp(core.NewAgentApp(owner))
}

// NewNode boots a physical machine for VM hosting.
func NewNode(cfg NodeConfig, service *AttestationService) (*Node, error) {
	return vmm.NewNode(cfg, service)
}

// LiveMigrate live-migrates a VM (with its enclaves) to another node.
func LiveMigrate(vm *VM, dst *Node, cfg *LiveMigrationConfig) (*VM, *LiveMigrationStats, error) {
	return vmm.LiveMigrate(vm, dst, cfg)
}

package sgxmig

import (
	"errors"
	"testing"

	"repro/internal/enclave"
	"repro/internal/hostproto"
	"repro/internal/testapps"
)

// world assembles the public-API objects the README quickstart uses.
func facadeWorld(t *testing.T) (*AttestationService, *Owner, *Host, *Host, *Machine, *Machine) {
	t.Helper()
	service, err := NewAttestationService()
	if err != nil {
		t.Fatal(err)
	}
	owner, err := NewOwner(service)
	if err != nil {
		t.Fatal(err)
	}
	mA, err := NewMachine(MachineConfig{Name: "fa", Quantum: 2000})
	if err != nil {
		t.Fatal(err)
	}
	mB, err := NewMachine(MachineConfig{Name: "fb", Quantum: 2000})
	if err != nil {
		t.Fatal(err)
	}
	service.RegisterMachine(mA.AttestationPublic())
	service.RegisterMachine(mB.AttestationPublic())
	return service, owner, NewHost(mA), NewHost(mB), mA, mB
}

// TestFacadeMigrate runs the README quickstart flow end-to-end through the
// public API only.
func TestFacadeMigrate(t *testing.T) {
	service, owner, hostA, hostB, _, _ := facadeWorld(t)
	app := testapps.CounterApp(1)
	rt, err := BuildEnclave(hostA, app, owner)
	if err != nil {
		t.Fatal(err)
	}
	reg := NewRegistry()
	reg.Add(NewDeployment(app, owner))
	if _, err := rt.ECall(0, testapps.CounterAdd, 1001); err != nil {
		t.Fatal(err)
	}
	inc, err := Migrate(rt, hostB, reg, &MigrationOptions{Service: service})
	if err != nil {
		t.Fatal(err)
	}
	res, err := inc.Runtime.ECall(0, testapps.CounterGet)
	if err != nil {
		t.Fatal(err)
	}
	if res[0] != 1001 {
		t.Fatalf("facade migration lost state: %d", res[0])
	}
	if _, err := rt.ECall(0, testapps.CounterGet); !errors.Is(err, enclave.ErrDestroyed) {
		t.Fatalf("facade source alive: %v", err)
	}
}

// TestFacadeOwnerSnapshot exercises OwnerCheckpoint/OwnerResume through the
// facade.
func TestFacadeOwnerSnapshot(t *testing.T) {
	_, owner, hostA, hostB, _, _ := facadeWorld(t)
	app := testapps.CounterApp(1)
	rt, err := BuildEnclave(hostA, app, owner)
	if err != nil {
		t.Fatal(err)
	}
	dep := NewDeployment(app, owner)
	if _, err := rt.ECall(0, testapps.CounterAdd, 7); err != nil {
		t.Fatal(err)
	}
	blob, err := OwnerCheckpoint(owner, rt)
	if err != nil {
		t.Fatal(err)
	}
	inc, err := OwnerResume(owner, hostB, dep, blob)
	if err != nil {
		t.Fatal(err)
	}
	res, err := inc.Runtime.ECall(0, testapps.CounterGet)
	if err != nil {
		t.Fatal(err)
	}
	if res[0] != 7 {
		t.Fatalf("facade resume state: %d", res[0])
	}
	if len(owner.Audit()) < 2 {
		t.Fatal("audit log missing entries")
	}
}

// TestFacadeAgentMeasurement: the helper matches the deployed agent.
func TestFacadeAgentMeasurement(t *testing.T) {
	_, owner, _, hostB, _, _ := facadeWorld(t)
	want := AgentMeasurement(owner)
	agent, err := StartAgent(hostB, owner)
	if err != nil {
		t.Fatal(err)
	}
	if agent.Measurement() != want {
		t.Fatal("AgentMeasurement disagrees with the deployed agent")
	}
}

// TestFacadeLiveMigrate drives the VM path through the facade types.
func TestFacadeLiveMigrate(t *testing.T) {
	service, owner, _, _, _, _ := facadeWorld(t)
	nodeA, err := NewNode(NodeConfig{Name: "fn-a", EPCFrames: 4096}, service)
	if err != nil {
		t.Fatal(err)
	}
	nodeB, err := NewNode(NodeConfig{Name: "fn-b", EPCFrames: 4096}, service)
	if err != nil {
		t.Fatal(err)
	}
	app := testapps.CounterApp(1)
	owner.ConfigureApp(app)
	dep := NewDeployment(app, owner)
	nodeA.Registry.Add(dep)
	nodeB.Registry.Add(dep)
	vm, err := nodeA.CreateVM(VMConfig{Name: "fvm", MemPages: 512})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := vm.OS.LaunchEnclaveProcess("e0", "counter", owner, nil); err != nil {
		t.Fatal(err)
	}
	p := vm.OS.Processes()[0]
	if _, err := p.RT.ECall(0, testapps.CounterAdd, 5); err != nil {
		t.Fatal(err)
	}
	tvm, stats, err := LiveMigrate(vm, nodeB, &LiveMigrationConfig{BandwidthBps: 1e9})
	if err != nil {
		t.Fatal(err)
	}
	if stats.EnclaveCount != 1 {
		t.Fatalf("stats: %+v", stats)
	}
	res, err := tvm.OS.Processes()[0].RT.ECall(0, testapps.CounterGet)
	if err != nil {
		t.Fatal(err)
	}
	if res[0] != 5 {
		t.Fatalf("VM facade migration lost state: %d", res[0])
	}
	if err := tvm.Shutdown(); err != nil {
		t.Fatal(err)
	}
}

// TestHostprotoIdentityDerivation: independent processes sharing a secret
// must derive identical identities — and different secrets must not.
func TestHostprotoIdentityDerivation(t *testing.T) {
	a := hostproto.DeriveIdentities("demo")
	b := hostproto.DeriveIdentities("demo")
	c := hostproto.DeriveIdentities("other")
	if a != b {
		t.Fatal("same secret derived different identities")
	}
	if a.SignerSeed == c.SignerSeed || a.ServiceSeed == c.ServiceSeed || a.EnclaveSeed == c.EnclaveSeed {
		t.Fatal("different secrets share identity material")
	}
	if a.SignerSeed == a.ServiceSeed || a.SignerSeed == a.EnclaveSeed {
		t.Fatal("derived identities collide with each other")
	}
}
